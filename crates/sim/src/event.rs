//! Typed simulation events and the deterministic event queue.
//!
//! The kernel's vocabulary is a small closed set of [`EventKind`]s; every
//! scheduled occurrence is a [`SimEvent`] — plain `Copy` data, no boxed
//! payloads — so the steady-state path moves events by value and never
//! allocates per event.
//!
//! Determinism (DESIGN.md §15): the queue is ordered by the total key
//! `(time, seq, source)`, where `seq` is the *per-source* emission
//! counter. Event times are non-negative finite floats, so comparing
//! `f64::to_bits` is order-preserving and bit-exact — no `partial_cmp`
//! edge cases on the hot path. Because `(source, seq)` pairs are unique,
//! the key is a total order: pop order depends only on what each
//! component emitted, never on insertion order — which is exactly the
//! registration-order invariance the kernel differential harness pins
//! with a property test.
//!
//! Layout (DESIGN.md §9): [`EventQueue`] is a timing wheel, not a heap.
//! A small sorted ring cache ([`CACHE_SLOTS`] events, ascending, minimum
//! at the front) serves the dominant facade pattern — a handful of
//! pending wakes and notes — with a shift-free append per push and a
//! `pop_front` per pop; behind it sit same-timestamp buckets keyed on
//! `time.to_bits()` (the lattice of coincident releases makes timestamp
//! collisions the common case), ordered so the soonest bucket pops from
//! the back of the bucket list without shifting. The wheel holds at most
//! [`WHEEL_SLOTS`] distinct pending timestamps; anything beyond spills
//! onto a binary-heap overflow rail ([`HeapQueue`] — the pre-wheel queue,
//! retained verbatim as both the rail and the differential oracle the
//! wheel is property-tested against). Admissibility: every pop compares
//! the wheel's best key with the rail's best key, so an event is returned
//! at its exact total-order position no matter which side holds it.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Index of a component registered with the [`crate::Kernel`].
///
/// Ids are caller-assigned, stable slot indices (e.g. core `k` of a
/// platform is component `k`), not registration handles — two runs that
/// wire the same components to the same slots order events identically.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ComponentId(pub usize);

/// Number of distinct [`EventKind`]s (the per-kind counter array width).
pub const EVENT_KINDS: usize = 7;

/// The closed event taxonomy of the simulation kernel.
///
/// `Release` and `Dispatch` are *wake* events: they drive a core engine's
/// next step. The remaining kinds are *notes* — semantic observations
/// (a completion, an injected fault, an (m,k) skip, a frame boundary, a
/// budget throttle) addressed to observer components. Notes carry no
/// float state, so they feed the per-component counters without touching
/// simulation arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// A job release instant (also the engine wake used while idle).
    Release,
    /// A job completed (executed to its actual demand).
    Completion,
    /// A dispatch-path engine wake (speed/review/execution continuation).
    Dispatch,
    /// An injected-fault observation (overrun, jitter, drop, shed, abort,
    /// forced full speed).
    Fault,
    /// A model-layer (m,k) skip of a weakly-hard job.
    Skip,
    /// A frame-task release boundary.
    FrameBoundary,
    /// A shared-power-budget throttle decision.
    Budget,
}

impl EventKind {
    /// Every kind, in counter-array order.
    pub const ALL: [EventKind; EVENT_KINDS] = [
        EventKind::Release,
        EventKind::Completion,
        EventKind::Dispatch,
        EventKind::Fault,
        EventKind::Skip,
        EventKind::FrameBoundary,
        EventKind::Budget,
    ];

    /// The kind's slot in per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            EventKind::Release => 0,
            EventKind::Completion => 1,
            EventKind::Dispatch => 2,
            EventKind::Fault => 3,
            EventKind::Skip => 4,
            EventKind::FrameBoundary => 5,
            EventKind::Budget => 6,
        }
    }

    /// A short stable label (used in reports and logs).
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Release => "release",
            EventKind::Completion => "completion",
            EventKind::Dispatch => "dispatch",
            EventKind::Fault => "fault",
            EventKind::Skip => "skip",
            EventKind::FrameBoundary => "frame-boundary",
            EventKind::Budget => "budget",
        }
    }
}

/// One scheduled occurrence: plain `Copy` data, no payload allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimEvent {
    /// Simulated time of the occurrence, in seconds (non-negative finite).
    pub time: f64,
    /// What happened.
    pub kind: EventKind,
    /// The emitting component.
    pub source: ComponentId,
    /// The component the kernel delivers the event to.
    pub target: ComponentId,
}

/// A queued event plus its per-source emission ordinal (the tiebreaker).
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueuedEvent {
    pub(crate) event: SimEvent,
    pub(crate) seq: u64,
}

impl QueuedEvent {
    /// The total ordering key `(time, seq, source)`. Times are
    /// non-negative finite, so the IEEE-754 bit pattern orders exactly
    /// like the float value.
    fn key(&self) -> (u64, u64, usize) {
        (self.event.time.to_bits(), self.seq, self.event.source.0)
    }
}

/// A binary min-heap over [`QueuedEvent::key`], backed by one reusable
/// `Vec` — cleared (not freed) between runs, so the steady-state path
/// never allocates once the buffer has grown to the run's high-water
/// mark of simultaneously pending events.
///
/// This was the event queue before the timing wheel; it is kept verbatim
/// as (a) the wheel's overflow rail and (b) the differential oracle the
/// wheel's pop order is property-tested against.
#[derive(Debug, Clone, Default)]
pub(crate) struct HeapQueue {
    heap: Vec<QueuedEvent>,
}

impl HeapQueue {
    /// Drops all pending events, keeping the buffer.
    pub(crate) fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// The minimum-key event, if any, without removing it.
    pub(crate) fn peek(&self) -> Option<&QueuedEvent> {
        self.heap.first()
    }

    /// Schedules an event under the given per-source sequence number.
    pub(crate) fn push(&mut self, event: SimEvent, seq: u64) {
        debug_assert!(
            event.time.is_finite() && event.time >= 0.0,
            "event time must be non-negative finite, got {}",
            event.time
        );
        self.heap.push(QueuedEvent { event, seq });
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the minimum-key event.
    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let min = self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
        min
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].key() < self.heap[parent].key() {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let left = 2 * i + 1;
            if left >= n {
                break;
            }
            let right = left + 1;
            let mut child = left;
            if right < n && self.heap[right].key() < self.heap[left].key() {
                child = right;
            }
            if self.heap[child].key() < self.heap[i].key() {
                self.heap.swap(i, child);
                i = child;
            } else {
                break;
            }
        }
    }
}

/// Maximum distinct pending timestamps the wheel holds before new
/// timestamps spill onto the overflow rail. Pending-set sizes in practice
/// are the component count plus same-instant notes, so 64 distinct
/// *times* is far past every facade workload — the rail exists so the
/// bound is a performance knob, never a correctness limit.
pub(crate) const WHEEL_SLOTS: usize = 64;

/// Occupancy counters of one [`EventQueue`] run (reset by
/// [`EventQueue::clear`]): how full the wheel ran and how often the
/// overflow rail was needed. Surfaced per-run through
/// [`crate::Kernel::queue_stats`] and reported as bench columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// High-water mark of distinct pending timestamps (wheel buckets).
    pub wheel_occupancy_hwm: u64,
    /// High-water mark of events sharing one pending timestamp.
    pub bucket_len_hwm: u64,
    /// Events pushed past [`WHEEL_SLOTS`] onto the heap overflow rail.
    pub overflow_pushes: u64,
}

/// One same-timestamp wheel bucket. Within a bucket only `(seq, source)`
/// orders pops, so the events are stored unordered and the minimum is
/// found by a scan — buckets are small (coincident lattice releases plus
/// notes), and `swap_remove` keeps extraction allocation- and shift-free.
#[derive(Debug, Clone, Default)]
struct Bucket {
    time_bits: u64,
    events: Vec<QueuedEvent>,
}

/// Capacity of the sorted front cache. Facade runs keep a core's
/// self-wake plus a few same-instant notes pending — comfortably under
/// eight — so the wheel machinery behind the cache is only exercised by
/// wide platforms and synthetic stress.
pub(crate) const CACHE_SLOTS: usize = 8;

/// The deterministic event queue: a small sorted front cache, a
/// single-level timing wheel bucketed by exact timestamp bits, and a
/// binary min-heap overflow rail (see the module docs for the geometry
/// and the order-preservation argument).
///
/// All storage is reused across runs: buckets emptied by pops park on a
/// spare list and are re-armed by later pushes, so the steady-state path
/// never allocates once every buffer has hit its high-water mark.
#[derive(Debug, Clone, Default)]
pub(crate) struct EventQueue {
    /// Up to [`CACHE_SLOTS`] events sorted by *ascending* key in a ring:
    /// the queue minimum sits at the front (when the rails hold nothing
    /// smaller) and newly emitted events — almost always the latest —
    /// append at the back, so both common paths are shift-free. The cache
    /// has no ordering relation to the rails — pops compare its front
    /// against the rails' best key, so every event is returned at its
    /// exact total-order position.
    cache: VecDeque<QueuedEvent>,
    /// Same-timestamp buckets, sorted by *descending* `time_bits`: the
    /// soonest bucket sits at the back, where it pops without shifting.
    wheel: Vec<Bucket>,
    /// Events past [`WHEEL_SLOTS`] distinct pending timestamps.
    overflow: HeapQueue,
    /// Recycled bucket storage (capacity retained).
    spare: Vec<Vec<QueuedEvent>>,
    len: usize,
    stats: QueueStats,
}

impl EventQueue {
    /// Drops all pending events and resets the occupancy stats, keeping
    /// every buffer.
    pub(crate) fn clear(&mut self) {
        self.cache.clear();
        while let Some(bucket) = self.wheel.pop() {
            let mut events = bucket.events;
            events.clear();
            self.spare.push(events);
        }
        self.overflow.clear();
        self.len = 0;
        self.stats = QueueStats::default();
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The occupancy counters accumulated since the last clear.
    pub(crate) fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Schedules an event under the given per-source sequence number.
    pub(crate) fn push(&mut self, event: SimEvent, seq: u64) {
        debug_assert!(
            event.time.is_finite() && event.time >= 0.0,
            "event time must be non-negative finite, got {}",
            event.time
        );
        let queued = QueuedEvent { event, seq };
        self.len += 1;
        if self.cache.len() < CACHE_SLOTS {
            self.cache_insert(queued);
        // xtask:allow(no-panic): branch runs only with CACHE_SLOTS > 0 entries cached
        } else if queued.key() < self.cache.back().expect("cache is full").key() {
            // The cache is full but the newcomer beats its largest entry:
            // evict the back (largest) to the rail and file the newcomer
            // at its sorted spot.
            // xtask:allow(no-panic): same full-cache invariant as above
            let evicted = self.cache.pop_back().expect("cache is full");
            self.cache_insert(queued);
            self.insert_rail(evicted);
        } else {
            self.insert_rail(queued);
        }
    }

    /// Files an event into the sorted cache. The scan runs from the back
    /// because emitted events are almost always the latest pending time —
    /// the common case is one comparison and a shift-free ring append.
    fn cache_insert(&mut self, queued: QueuedEvent) {
        let mut pos = self.cache.len();
        while pos > 0 && self.cache[pos - 1].key() > queued.key() {
            pos -= 1;
        }
        self.cache.insert(pos, queued);
    }

    /// Removes and returns the minimum-key event. The candidates are the
    /// cache's front, the `(seq, source)` minimum of the wheel's soonest
    /// (back) bucket, and the overflow top; the cache has no ordering
    /// relation to the rails, so the three are compared on the full key —
    /// every event pops at its exact total-order position no matter where
    /// it is held.
    pub(crate) fn pop(&mut self) -> Option<QueuedEvent> {
        if self.wheel.is_empty() && self.overflow.len() == 0 {
            // Fast path (the facade steady state): both rails empty, the
            // sorted cache is the whole queue.
            let out = self.cache.pop_front()?;
            self.len -= 1;
            return Some(out);
        }
        let wheel_min = self.wheel.last().map(|bucket| {
            let mut best = 0;
            let mut best_key = bucket.events[0].key();
            for (i, candidate) in bucket.events.iter().enumerate().skip(1) {
                let key = candidate.key();
                if key < best_key {
                    best = i;
                    best_key = key;
                }
            }
            (best, best_key)
        });
        let overflow_key = self.overflow.peek().map(QueuedEvent::key);
        // At least one rail is non-empty here, so a best rail candidate
        // exists: `(from_overflow, index within the back bucket, key)`.
        let (from_overflow, index, rail_key) = match (wheel_min, overflow_key) {
            (Some((i, w)), Some(o)) => {
                if o < w {
                    (true, 0, o)
                } else {
                    (false, i, w)
                }
            }
            (Some((i, w)), None) => (false, i, w),
            (None, Some(o)) => (true, 0, o),
            (None, None) => unreachable!("checked non-empty above"),
        };
        self.len -= 1;
        if let Some(front) = self.cache.front() {
            if front.key() < rail_key {
                return self.cache.pop_front();
            }
        }
        if from_overflow {
            self.overflow.pop()
        } else {
            // xtask:allow(no-panic): wheel_min was Some, so the back bucket exists
            let bucket = self.wheel.last_mut().expect("candidate came from it");
            let min = bucket.events.swap_remove(index);
            if bucket.events.is_empty() {
                // xtask:allow(no-panic): last_mut() above proved non-empty
                let emptied = self.wheel.pop().expect("bucket exists");
                self.spare.push(emptied.events);
            }
            Some(min)
        }
    }

    /// Files a non-minimum event into the wheel, or onto the overflow
    /// rail when the wheel is at capacity and no bucket matches. The
    /// bucket list is sorted by descending `time_bits`, so one binary
    /// search finds both the matching bucket and the insertion slot.
    fn insert_rail(&mut self, queued: QueuedEvent) {
        let bits = queued.event.time.to_bits();
        let pos = self.wheel.partition_point(|b| b.time_bits > bits);
        if let Some(bucket) = self.wheel.get_mut(pos) {
            // xtask:allow(float-eq): u64 bit-pattern bucket key, not float arithmetic
            if bucket.time_bits == bits {
                bucket.events.push(queued);
                // Only bother with the exact cached-peer count when the
                // upper bound (bucket + whole cache) would move the
                // high-water mark.
                let bucket_len = bucket.events.len() as u64;
                if bucket_len + CACHE_SLOTS as u64 > self.stats.bucket_len_hwm {
                    let cached_peers = self
                        .cache
                        .iter()
                        // xtask:allow(float-eq): u64 bit-pattern match
                        .filter(|e| e.event.time.to_bits() == bits)
                        .count() as u64;
                    let len = bucket_len + cached_peers;
                    if len > self.stats.bucket_len_hwm {
                        self.stats.bucket_len_hwm = len;
                    }
                }
                return;
            }
        }
        if self.wheel.len() < WHEEL_SLOTS {
            // New timestamp: arm a recycled bucket at its sorted slot
            // (descending `time_bits`, so the soonest stays at the back).
            let mut events = self.spare.pop().unwrap_or_default();
            events.push(queued);
            self.wheel.insert(
                pos,
                Bucket {
                    time_bits: bits,
                    events,
                },
            );
            let occupancy = self.wheel.len() as u64;
            if occupancy > self.stats.wheel_occupancy_hwm {
                self.stats.wheel_occupancy_hwm = occupancy;
            }
        } else {
            self.stats.overflow_pushes += 1;
            self.overflow.push(queued.event, queued.seq);
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: f64, source: usize) -> SimEvent {
        SimEvent {
            time,
            kind: EventKind::Dispatch,
            source: ComponentId(source),
            target: ComponentId(source),
        }
    }

    #[test]
    fn pops_in_time_then_seq_then_source_order() {
        let mut q = EventQueue::default();
        q.push(ev(2.0, 0), 0);
        q.push(ev(1.0, 1), 5);
        q.push(ev(1.0, 0), 3);
        q.push(ev(1.0, 2), 3);
        let order: Vec<(f64, u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|q| (q.event.time, q.seq, q.event.source.0))
            .collect();
        assert_eq!(
            order,
            vec![(1.0, 3, 0), (1.0, 3, 2), (1.0, 5, 1), (2.0, 0, 0)]
        );
    }

    #[test]
    fn pop_order_is_insertion_order_invariant() {
        let events: Vec<(SimEvent, u64)> = vec![
            (ev(0.0, 0), 0),
            (ev(0.0, 1), 0),
            (ev(0.5, 0), 1),
            (ev(0.5, 2), 0),
            (ev(1.0, 1), 1),
        ];
        let forward = {
            let mut q = EventQueue::default();
            for &(e, s) in &events {
                q.push(e, s);
            }
            std::iter::from_fn(|| q.pop())
                .map(|q| (q.event.time, q.seq, q.event.source.0))
                .collect::<Vec<_>>()
        };
        let reverse = {
            let mut q = EventQueue::default();
            for &(e, s) in events.iter().rev() {
                q.push(e, s);
            }
            std::iter::from_fn(|| q.pop())
                .map(|q| (q.event.time, q.seq, q.event.source.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(forward, reverse);
    }

    #[test]
    fn kind_indices_are_a_bijection() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn clear_keeps_buffer_empties_queue() {
        let mut q = EventQueue::default();
        q.push(ev(1.0, 0), 0);
        assert_eq!(q.len(), 1);
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
        assert_eq!(q.stats(), QueueStats::default());
    }

    /// Feeds the same (event, seq) stream to the wheel and the heap
    /// oracle interleaved with pops, asserting bit-identical pop streams.
    fn assert_wheel_matches_heap(stream: &[(SimEvent, u64)], pop_every: usize) {
        let mut wheel = EventQueue::default();
        let mut heap = HeapQueue::default();
        let check = |w: Option<QueuedEvent>, h: Option<QueuedEvent>| {
            let key = |q: QueuedEvent| (q.event.time.to_bits(), q.seq, q.event.source.0);
            assert_eq!(w.map(key), h.map(key));
        };
        for (i, &(e, s)) in stream.iter().enumerate() {
            wheel.push(e, s);
            heap.push(e, s);
            if pop_every > 0 && i % pop_every == pop_every - 1 {
                check(wheel.pop(), heap.pop());
            }
        }
        assert_eq!(wheel.len(), heap.len());
        loop {
            let (w, h) = (wheel.pop(), heap.pop());
            let done = w.is_none();
            check(w, h);
            if done {
                break;
            }
        }
    }

    /// Deterministic xorshift-style stream of lattice + off-lattice
    /// times across a few sources, with unique per-source seqs.
    fn random_stream(seed: u64, n: usize, distinct_times: usize) -> Vec<(SimEvent, u64)> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut seqs = [0u64; 4];
        (0..n)
            .map(|_| {
                let r = next();
                let slot = (r % distinct_times as u64) as f64;
                // Half lattice-aligned, half off-lattice jitter times.
                let time = if r & 1 == 0 {
                    slot * 0.5
                } else {
                    slot * 0.5 + (r >> 8 & 0xff) as f64 * 1e-4
                };
                let source = (r >> 3) as usize % 4;
                let seq = seqs[source];
                seqs[source] += 1;
                (ev(time, source), seq)
            })
            .collect()
    }

    #[test]
    fn wheel_matches_heap_on_random_streams() {
        for seed in [1u64, 2, 3, 5, 8, 13] {
            // Few distinct times: deep buckets, wheel never overflows.
            assert_wheel_matches_heap(&random_stream(seed, 200, 12), 3);
        }
    }

    #[test]
    fn wheel_matches_heap_past_overflow_capacity() {
        for seed in [7u64, 21, 42] {
            // Far more distinct pending timestamps than WHEEL_SLOTS, so a
            // large fraction of pushes land on the heap overflow rail and
            // pops must interleave the two rails correctly.
            let stream = random_stream(seed, 600, 8 * WHEEL_SLOTS);
            let mut wheel = EventQueue::default();
            for &(e, s) in &stream {
                wheel.push(e, s);
            }
            assert!(wheel.stats().overflow_pushes > 0);
            assert_wheel_matches_heap(&stream, 0);
            assert_wheel_matches_heap(&stream, 5);
        }
    }

    #[test]
    fn stats_track_occupancy_and_overflow() {
        let mut q = EventQueue::default();
        // Two more coincident events than the cache holds, plus one event
        // at a second timestamp.
        for s in 0..(CACHE_SLOTS + 2) {
            q.push(ev(1.0, 0), s as u64);
        }
        q.push(ev(2.0, 0), (CACHE_SLOTS + 2) as u64);
        let stats = q.stats();
        // The cache holds the first CACHE_SLOTS events at 1.0; the two
        // spills share a bucket, and the 2.0 event arms a second bucket.
        // The bucket-length high-water mark counts the cached peers, so
        // it reports all ten coincident events.
        assert_eq!(stats.wheel_occupancy_hwm, 2);
        assert_eq!(stats.bucket_len_hwm, CACHE_SLOTS as u64 + 2);
        assert_eq!(stats.overflow_pushes, 0);
        q.clear();
        for i in 0..(CACHE_SLOTS + WHEEL_SLOTS + 10) {
            q.push(ev(1.0 + i as f64, 0), i as u64);
        }
        // CACHE_SLOTS timestamps cached, WHEEL_SLOTS in the wheel, the
        // rest overflowed.
        assert_eq!(q.stats().overflow_pushes, 10);
        assert_eq!(q.stats().wheel_occupancy_hwm, WHEEL_SLOTS as u64);
    }
}
