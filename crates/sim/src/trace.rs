//! Execution traces (who ran when, at which speed).

use serde::{Deserialize, Serialize};
use stadvs_power::Speed;

use crate::job::JobId;

/// What the processor was doing during a [`Segment`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Executing a job at the segment's speed.
    Execute {
        /// The executing job.
        job: JobId,
    },
    /// Idle (no ready jobs).
    Idle,
    /// Mid speed/voltage transition (no instructions execute).
    Transition,
}

/// A maximal interval during which the processor state did not change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start instant, in seconds.
    pub start: f64,
    /// End instant, in seconds (`end >= start`).
    pub end: f64,
    /// The speed during the segment (the current platform speed — also
    /// recorded for idle and transition segments).
    pub speed: Speed,
    /// What the processor was doing.
    pub kind: SegmentKind,
}

impl Segment {
    /// The segment's duration in seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// A complete, ordered execution trace of one simulation run.
///
/// Consecutive segments with the same kind and speed are merged on insertion
/// so traces stay compact; segments are guaranteed contiguous and
/// non-overlapping.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    segments: Vec<Segment>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a segment, merging it with the previous one when the state is
    /// identical. Zero-length segments are dropped.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the segment does not start where the trace
    /// currently ends (traces must be contiguous).
    pub fn push(&mut self, segment: Segment) {
        if segment.duration() <= 0.0 {
            return;
        }
        if let Some(last) = self.segments.last_mut() {
            debug_assert!(
                (segment.start - last.end).abs() < 1e-6,
                "trace gap: previous segment ends at {}, next starts at {}",
                last.end,
                segment.start
            );
            if last.kind == segment.kind && last.speed.same_point(segment.speed) {
                last.end = segment.end;
                return;
            }
        }
        self.segments.push(segment);
    }

    /// The recorded segments, in time order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total time spent executing jobs.
    pub fn busy_time(&self) -> f64 {
        self.time_where(|k| matches!(k, SegmentKind::Execute { .. }))
    }

    /// Total time spent idle.
    pub fn idle_time(&self) -> f64 {
        self.time_where(|k| matches!(k, SegmentKind::Idle))
    }

    /// Total time spent in speed transitions.
    pub fn transition_time(&self) -> f64 {
        self.time_where(|k| matches!(k, SegmentKind::Transition))
    }

    /// Total work (full-speed-normalized) executed for `job`.
    pub fn work_executed_for(&self, job: JobId) -> f64 {
        self.segments
            .iter()
            .filter(|s| matches!(s.kind, SegmentKind::Execute { job: j } if j == job))
            .map(|s| s.duration() * s.speed.ratio())
            .sum()
    }

    /// The end instant of the trace (0 when empty).
    pub fn end(&self) -> f64 {
        self.segments.last().map_or(0.0, |s| s.end)
    }

    fn time_where(&self, mut pred: impl FnMut(&SegmentKind) -> bool) -> f64 {
        self.segments
            .iter()
            .filter(|s| pred(&s.kind))
            .map(Segment::duration)
            .sum()
    }

    /// Renders the trace as CSV (`start,end,speed,kind,task,job`), ready
    /// for gnuplot/pandas: idle and transition rows have empty task/job
    /// fields. Speeds are the normalized ratios.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("start,end,speed,kind,task,job\n");
        for seg in &self.segments {
            let (kind, task, job) = match seg.kind {
                SegmentKind::Execute { job } => {
                    // xtask:allow(hot-path-alloc): post-run CSV export, not the dispatch loop
                    ("execute", job.task.0.to_string(), job.index.to_string())
                }
                // xtask:allow(hot-path-alloc): post-run CSV export, not the dispatch loop
                SegmentKind::Idle => ("idle", String::new(), String::new()),
                // xtask:allow(hot-path-alloc): post-run CSV export, not the dispatch loop
                SegmentKind::Transition => ("transition", String::new(), String::new()),
            };
            // xtask:allow(hot-path-alloc): post-run CSV export, not the dispatch loop
            out.push_str(&format!(
                "{},{},{},{kind},{task},{job}\n",
                seg.start,
                seg.end,
                seg.speed.ratio()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskId;

    fn job(task: usize) -> JobId {
        JobId {
            task: TaskId(task),
            index: 0,
        }
    }

    fn seg(start: f64, end: f64, speed: f64, kind: SegmentKind) -> Segment {
        Segment {
            start,
            end,
            speed: Speed::new(speed).unwrap(),
            kind,
        }
    }

    #[test]
    fn push_merges_identical_neighbours() {
        let mut t = Trace::new();
        t.push(seg(0.0, 1.0, 1.0, SegmentKind::Execute { job: job(0) }));
        t.push(seg(1.0, 2.0, 1.0, SegmentKind::Execute { job: job(0) }));
        t.push(seg(2.0, 3.0, 0.5, SegmentKind::Execute { job: job(0) }));
        t.push(seg(3.0, 3.0, 0.5, SegmentKind::Idle)); // zero-length: dropped
        t.push(seg(3.0, 4.0, 0.5, SegmentKind::Idle));
        assert_eq!(t.segments().len(), 3);
        assert_eq!(t.segments()[0].end, 2.0);
        assert_eq!(t.end(), 4.0);
    }

    #[test]
    fn time_accounting_by_kind() {
        let mut t = Trace::new();
        t.push(seg(0.0, 2.0, 1.0, SegmentKind::Execute { job: job(0) }));
        t.push(seg(2.0, 2.5, 1.0, SegmentKind::Transition));
        t.push(seg(2.5, 4.5, 0.5, SegmentKind::Execute { job: job(1) }));
        t.push(seg(4.5, 6.0, 0.5, SegmentKind::Idle));
        assert!((t.busy_time() - 4.0).abs() < 1e-12);
        assert!((t.idle_time() - 1.5).abs() < 1e-12);
        assert!((t.transition_time() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn csv_rendering() {
        let mut t = Trace::new();
        t.push(seg(0.0, 1.0, 0.5, SegmentKind::Execute { job: job(2) }));
        t.push(seg(1.0, 2.0, 0.5, SegmentKind::Idle));
        t.push(seg(2.0, 2.1, 1.0, SegmentKind::Transition));
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "start,end,speed,kind,task,job");
        assert_eq!(lines[1], "0,1,0.5,execute,2,0");
        assert_eq!(lines[2], "1,2,0.5,idle,,");
        assert!(lines[3].starts_with("2,2.1,1,transition"));
    }

    #[test]
    fn work_executed_scales_with_speed() {
        let mut t = Trace::new();
        t.push(seg(0.0, 2.0, 0.5, SegmentKind::Execute { job: job(0) }));
        t.push(seg(2.0, 3.0, 1.0, SegmentKind::Execute { job: job(0) }));
        t.push(seg(3.0, 4.0, 1.0, SegmentKind::Execute { job: job(1) }));
        assert!((t.work_executed_for(job(0)) - 2.0).abs() < 1e-12);
        assert!((t.work_executed_for(job(1)) - 1.0).abs() < 1e-12);
    }
}
