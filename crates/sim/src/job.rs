//! Job instances and their run-time state.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::task::{TaskId, TaskKind};

/// Identifier of one job: the releasing task and the job's 0-based index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId {
    /// The releasing task.
    pub task: TaskId,
    /// 0-based job index within that task.
    pub index: u64,
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.task, self.index)
    }
}

/// A released, not-yet-completed job as the scheduler (and governors) see it.
///
/// Governors are **not clairvoyant**: the job's *actual* execution demand is
/// private; only the worst-case budget, the work executed so far, and the
/// wall-clock time consumed so far are visible. These are exactly the
/// quantities the on-line DVS literature allows an algorithm to inspect.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveJob {
    /// The job's identity.
    pub id: JobId,
    /// Release instant, in seconds.
    pub release: f64,
    /// Absolute deadline, in seconds.
    pub deadline: f64,
    /// Worst-case execution time at full speed (the job's work budget).
    pub wcet: f64,
    /// The releasing task's scheduling model, visible to governors so
    /// model-aware policies can treat weakly-hard or frame jobs specially.
    pub kind: TaskKind,
    pub(crate) executed: f64,
    pub(crate) wall_used: f64,
    pub(crate) actual: f64,
    pub(crate) preemptions: u32,
    /// Set by the fault-injecting engine when this job's executed work
    /// crossed its WCET with demand still remaining.
    pub(crate) overrun: bool,
    /// Set under [`OverrunPolicy::CompleteAtMax`](crate::OverrunPolicy):
    /// the simulator dispatches this job at full speed, bypassing the
    /// governor whose certificate the overrun invalidated.
    pub(crate) forced_max: bool,
    /// Whether an injected overrun may have affected this job's outcome
    /// (shared a busy interval with overrun backlog).
    pub(crate) contaminated: bool,
}

impl ActiveJob {
    /// Creates a freshly released job (no work executed yet). `actual` is
    /// clamped into `[0, wcet]`.
    ///
    /// Mostly used by the simulator; exposed so that governor crates can
    /// unit-test their slack accounting against hand-built jobs.
    pub fn new(id: JobId, release: f64, deadline: f64, wcet: f64, actual: f64) -> ActiveJob {
        ActiveJob {
            id,
            release,
            deadline,
            wcet,
            kind: TaskKind::Hard,
            executed: 0.0,
            wall_used: 0.0,
            actual: actual.clamp(0.0, wcet),
            preemptions: 0,
            overrun: false,
            forced_max: false,
            contaminated: false,
        }
    }

    /// Whether this job has been detected overrunning its WCET (only ever
    /// true under fault injection; see
    /// [`Governor::on_overrun`](crate::Governor::on_overrun)).
    pub fn in_overrun(&self) -> bool {
        self.overrun
    }

    /// Work executed so far (full-speed-normalized units).
    pub fn executed(&self) -> f64 {
        self.executed
    }

    /// Remaining *worst-case* work: `wcet − executed`, floored at zero.
    ///
    /// This is the quantity a hard-real-time governor must budget for; the
    /// actual remaining work is hidden.
    pub fn remaining_budget(&self) -> f64 {
        (self.wcet - self.executed).max(0.0)
    }

    /// Wall-clock time this job has occupied the processor so far
    /// (execution segments only; preempted time does not count).
    pub fn wall_used(&self) -> f64 {
        self.wall_used
    }

    /// How many times this job has been preempted so far.
    pub fn preemptions(&self) -> u32 {
        self.preemptions
    }

    pub(crate) fn remaining_actual(&self) -> f64 {
        (self.actual - self.executed).max(0.0)
    }
}

/// The completed-job record kept in the simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The job's identity.
    pub id: JobId,
    /// Release instant.
    pub release: f64,
    /// Absolute deadline.
    pub deadline: f64,
    /// Worst-case execution time at full speed.
    pub wcet: f64,
    /// Actual execution demand at full speed.
    pub actual: f64,
    /// Completion instant, or `None` if the job was still incomplete when
    /// the simulation horizon ended.
    pub completion: Option<f64>,
    /// Total wall-clock processor time the job consumed.
    pub wall_time: f64,
    /// Number of preemptions suffered.
    pub preemptions: u32,
}

impl JobRecord {
    /// Whether the job missed its deadline: it completed after the deadline,
    /// or never completed although its deadline fell within the simulated
    /// horizon. A `1 ns` tolerance absorbs floating-point event arithmetic.
    pub fn missed(&self, horizon: f64) -> bool {
        const TOL: f64 = 1.0e-9;
        match self.completion {
            Some(c) => c > self.deadline + TOL,
            None => self.deadline <= horizon + TOL,
        }
    }

    /// Response time (completion − release), if the job completed.
    pub fn response_time(&self) -> Option<f64> {
        self.completion.map(|c| c - self.release)
    }

    /// Slack this job left unused: `wcet − actual`.
    pub fn earliness(&self) -> f64 {
        (self.wcet - self.actual).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> ActiveJob {
        ActiveJob::new(
            JobId {
                task: TaskId(0),
                index: 1,
            },
            0.0,
            10.0,
            2.0,
            1.5,
        )
    }

    #[test]
    fn active_job_budgets() {
        let mut j = job();
        assert_eq!(j.remaining_budget(), 2.0);
        assert_eq!(j.remaining_actual(), 1.5);
        j.executed = 1.0;
        j.wall_used = 2.0;
        assert_eq!(j.remaining_budget(), 1.0);
        assert_eq!(j.remaining_actual(), 0.5);
        assert_eq!(j.wall_used(), 2.0);
        j.executed = 2.5; // over-run clamps at zero
        assert_eq!(j.remaining_budget(), 0.0);
        assert_eq!(j.remaining_actual(), 0.0);
    }

    #[test]
    fn actual_is_clamped_to_wcet() {
        let j = ActiveJob::new(
            JobId {
                task: TaskId(0),
                index: 0,
            },
            0.0,
            1.0,
            2.0,
            5.0,
        );
        assert_eq!(j.actual, 2.0);
        let j2 = ActiveJob::new(
            JobId {
                task: TaskId(0),
                index: 0,
            },
            0.0,
            1.0,
            2.0,
            -1.0,
        );
        assert_eq!(j2.actual, 0.0);
    }

    #[test]
    fn record_miss_logic() {
        let base = JobRecord {
            id: JobId {
                task: TaskId(0),
                index: 0,
            },
            release: 0.0,
            deadline: 10.0,
            wcet: 2.0,
            actual: 1.0,
            completion: Some(9.0),
            wall_time: 2.0,
            preemptions: 0,
        };
        assert!(!base.missed(100.0));
        let late = JobRecord {
            completion: Some(10.1),
            ..base.clone()
        };
        assert!(late.missed(100.0));
        let unfinished = JobRecord {
            completion: None,
            ..base.clone()
        };
        assert!(unfinished.missed(100.0)); // deadline 10 within horizon 100
        assert!(!unfinished.missed(5.0)); // horizon ended before the deadline
        assert_eq!(base.response_time(), Some(9.0));
        assert_eq!(unfinished.response_time(), None);
        assert_eq!(base.earliness(), 1.0);
    }

    #[test]
    fn job_id_display() {
        let id = JobId {
            task: TaskId(4),
            index: 12,
        };
        assert_eq!(id.to_string(), "T4#12");
    }
}
