//! # stadvs-analysis — schedulability, trace auditing, and clairvoyant bounds
//!
//! The off-line referee of the `stadvs` reproduction:
//!
//! * [`edf_schedulable`] / [`dbf`] — EDF schedulability at full speed
//!   (utilization bound for implicit deadlines, demand-bound function and
//!   QPA for constrained deadlines),
//! * [`materialize_jobs`] — the exact, deterministic job list a simulation
//!   will execute (the clairvoyant view),
//! * [`yds_schedule`] / [`optimal_static_speed`] — the Yao–Demers–Shenker
//!   optimal offline voltage schedule and the oracle static speed, the
//!   lower bounds every on-line governor is measured against,
//! * [`validate_outcome`] — the hard-real-time audit of a simulation run
//!   (deadlines, work conservation, speed availability, timeline tiling),
//! * [`Summary`] and friends — replication statistics,
//! * [`stable_sum`] / [`compensated_sum`] — order-stable f64
//!   accumulation for aggregating from unordered sources without
//!   breaking bit-identical replay (DESIGN.md §12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod jobs;
mod response;
mod schedulability;
mod static_speed;
mod stats;
mod validate;
mod yds;

pub use accum::{compensated_sum, stable_sum};
pub use jobs::{due_within, materialize_jobs, JobInstance};
pub use response::{response_profile, TaskResponse};
pub use schedulability::{busy_period, dbf, edf_schedulable, SchedulabilityTest};
pub use static_speed::minimum_static_speed;
pub use stats::{geometric_mean, normalize, Summary};
pub use validate::{recompute_energy, validate_outcome, Issue, ValidationReport};
pub use yds::{optimal_static_speed, yds_schedule, SpeedBlock, SpeedSchedule, WorkKind};
