//! Post-hoc validation of simulation outcomes — the hard-real-time audit.

use std::fmt;

use serde::{Deserialize, Serialize};
use stadvs_power::Processor;
use stadvs_sim::{JobId, SegmentKind, SimOutcome, TaskSet};

const TOL: f64 = 1.0e-6;

/// One problem found while auditing an outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Issue {
    /// A job completed after its deadline (or never completed although due).
    DeadlineMiss {
        /// The offending job.
        job: JobId,
        /// Completion time (horizon if never completed).
        completed: f64,
        /// The job's absolute deadline.
        deadline: f64,
    },
    /// Trace work for a completed job differs from its actual demand.
    WorkMismatch {
        /// The offending job.
        job: JobId,
        /// Work found in the trace.
        traced: f64,
        /// The job's recorded actual demand.
        actual: f64,
    },
    /// An execution segment ran at a speed the platform does not offer.
    UnavailableSpeed {
        /// The segment's start time.
        at: f64,
        /// The offending speed ratio.
        speed: f64,
    },
    /// A job executed before its release or after its deadline.
    ExecutionOutsideWindow {
        /// The offending job.
        job: JobId,
        /// Start of the offending segment.
        at: f64,
    },
    /// Trace segments do not tile the horizon (gap or overlap).
    BrokenTimeline {
        /// Where the discontinuity was found.
        at: f64,
    },
    /// The number of released jobs does not match the periodic pattern.
    WrongJobCount {
        /// Expected number of jobs.
        expected: usize,
        /// Number of job records present.
        found: usize,
    },
    /// A completed job's recorded wall time differs from the total duration
    /// of its execution segments in the trace.
    WallTimeMismatch {
        /// The offending job.
        job: JobId,
        /// Wall time summed from the trace.
        traced: f64,
        /// Wall time the simulator recorded.
        reported: f64,
    },
    /// The energy bill recomputed from the trace disagrees with the
    /// simulator's accounting.
    EnergyMismatch {
        /// Energy component that disagrees ("active", "idle",
        /// "transition", or "switches").
        component: String,
        /// Value recomputed from the trace.
        recomputed: f64,
        /// Value the simulator reported.
        reported: f64,
    },
}

impl fmt::Display for Issue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Issue::DeadlineMiss {
                job,
                completed,
                deadline,
            } => write!(f, "job {job} missed deadline {deadline} (done {completed})"),
            Issue::WorkMismatch {
                job,
                traced,
                actual,
            } => {
                write!(f, "job {job} traced work {traced} != actual {actual}")
            }
            Issue::UnavailableSpeed { at, speed } => {
                write!(f, "segment at {at} runs at unavailable speed {speed}")
            }
            Issue::ExecutionOutsideWindow { job, at } => {
                write!(f, "job {job} executed outside [release, deadline] at {at}")
            }
            Issue::BrokenTimeline { at } => write!(f, "trace discontinuity at {at}"),
            Issue::WallTimeMismatch {
                job,
                traced,
                reported,
            } => write!(
                f,
                "job {job} traced wall time {traced} != recorded {reported}"
            ),
            Issue::WrongJobCount { expected, found } => {
                write!(f, "expected {expected} job records, found {found}")
            }
            Issue::EnergyMismatch {
                component,
                recomputed,
                reported,
            } => write!(
                f,
                "{component} energy recomputed from trace ({recomputed}) != reported ({reported})"
            ),
        }
    }
}

/// The result of auditing one [`SimOutcome`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ValidationReport {
    /// All problems found (empty for a clean run).
    pub issues: Vec<Issue>,
    /// Number of job records audited.
    pub jobs_checked: usize,
}

impl ValidationReport {
    /// Whether the outcome passed every check.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Number of deadline misses among the issues.
    pub fn miss_count(&self) -> usize {
        self.issues
            .iter()
            .filter(|i| matches!(i, Issue::DeadlineMiss { .. }))
            .count()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean ({} jobs audited)", self.jobs_checked)
        } else {
            writeln!(
                f,
                "{} issue(s) over {} jobs:",
                self.issues.len(),
                self.jobs_checked
            )?;
            for i in &self.issues {
                writeln!(f, "  - {i}")?;
            }
            Ok(())
        }
    }
}

/// Audits a simulation outcome against the task set and platform:
///
/// 1. every due job met its deadline;
/// 2. the number of job records matches the periodic release pattern;
/// 3. with a trace: segments tile `[0, horizon]` with no gaps/overlaps,
///    every execution segment runs at an available speed, inside the job's
///    `[release, deadline]` window (for jobs that met their deadline), and
///    each completed job's traced work equals its recorded actual demand
///    (work conservation).
///
/// This is the independent referee for the "hard real-time" claim: governors
/// are audited from the outside, not trusted.
pub fn validate_outcome(
    outcome: &SimOutcome,
    tasks: &TaskSet,
    processor: &Processor,
) -> ValidationReport {
    let mut report = ValidationReport {
        issues: Vec::new(),
        jobs_checked: outcome.jobs.len(),
    };
    let horizon = outcome.horizon;

    // 1. Deadline audit.
    for r in &outcome.jobs {
        if r.missed(horizon) {
            report.issues.push(Issue::DeadlineMiss {
                job: r.id,
                completed: r.completion.unwrap_or(horizon),
                deadline: r.deadline,
            });
        }
    }

    // 2. Release-pattern audit.
    let expected: usize = tasks
        .iter()
        .map(|(_, t)| {
            if t.phase() >= horizon {
                0
            } else {
                ((horizon - t.phase() - 1e-12) / t.period()).floor() as usize + 1
            }
        })
        .sum();
    if expected != outcome.jobs.len() {
        report.issues.push(Issue::WrongJobCount {
            expected,
            found: outcome.jobs.len(),
        });
    }

    // 3. Trace audit.
    if let Some(trace) = outcome.trace.as_ref() {
        let mut cursor = 0.0;
        for seg in trace.segments() {
            if (seg.start - cursor).abs() > TOL || seg.end < seg.start - TOL {
                report.issues.push(Issue::BrokenTimeline { at: seg.start });
            }
            cursor = seg.end;
            if let SegmentKind::Execute { job } = seg.kind {
                let granted = processor.quantize_up(seg.speed);
                if (granted.ratio() - seg.speed.ratio()).abs() > 1e-12
                    || seg.speed.ratio() > 1.0 + 1e-12
                    || seg.speed.ratio() < processor.min_speed().ratio() - 1e-9
                {
                    report.issues.push(Issue::UnavailableSpeed {
                        at: seg.start,
                        speed: seg.speed.ratio(),
                    });
                }
                if let Some(rec) = outcome.jobs.iter().find(|r| r.id == job) {
                    let inside = seg.start >= rec.release - TOL
                        && (seg.end <= rec.deadline + TOL || rec.missed(horizon));
                    if !inside {
                        report
                            .issues
                            .push(Issue::ExecutionOutsideWindow { job, at: seg.start });
                    }
                }
            }
        }
        if (cursor - horizon).abs() > TOL {
            report.issues.push(Issue::BrokenTimeline { at: cursor });
        }
        for r in &outcome.jobs {
            let traced = trace.work_executed_for(r.id);
            if r.completion.is_some() {
                if (traced - r.actual).abs() > TOL.max(r.actual * 1e-6) {
                    report.issues.push(Issue::WorkMismatch {
                        job: r.id,
                        traced,
                        actual: r.actual,
                    });
                }
                let traced_wall: f64 = trace
                    .segments()
                    .iter()
                    .filter(|s| matches!(s.kind, SegmentKind::Execute { job } if job == r.id))
                    .map(|s| s.duration())
                    .sum();
                if (traced_wall - r.wall_time).abs() > TOL.max(r.wall_time * 1e-6) {
                    report.issues.push(Issue::WallTimeMismatch {
                        job: r.id,
                        traced: traced_wall,
                        reported: r.wall_time,
                    });
                }
            } else if traced > r.actual + TOL || traced > r.wcet + TOL {
                // A job cut off by the horizon can have executed at most its
                // actual demand (which is itself at most its worst case).
                report.issues.push(Issue::WorkMismatch {
                    job: r.id,
                    traced,
                    actual: r.actual,
                });
            }
        }

        // 4. Independent energy recomputation from the trace.
        let (recomputed, switches) = recompute_energy(trace, processor);
        let checks = [
            ("active", recomputed.active, outcome.energy.active),
            ("idle", recomputed.idle, outcome.energy.idle),
            (
                "transition",
                recomputed.transition,
                outcome.energy.transition,
            ),
            ("switches", switches as f64, outcome.switches as f64),
        ];
        for (component, got, reported) in checks {
            let tol = TOL.max(reported.abs() * 1e-6);
            if (got - reported).abs() > tol {
                report.issues.push(Issue::EnergyMismatch {
                    component: component.to_string(),
                    recomputed: got,
                    reported,
                });
            }
        }
    }

    report
}

/// Recomputes the energy bill of a trace from first principles: active and
/// idle energy by integrating the power model over the segments, transition
/// energy and switch count by diffing the speeds of adjacent segments
/// (starting from the platform's initial full speed). Returns the breakdown
/// and the switch count.
pub fn recompute_energy(
    trace: &stadvs_sim::Trace,
    processor: &Processor,
) -> (stadvs_power::EnergyBreakdown, u64) {
    use stadvs_power::Speed;
    let power = processor.power_model();
    let overhead = processor.overhead();
    let mut breakdown = stadvs_power::EnergyBreakdown::default();
    let mut switches = 0u64;
    let mut current = Speed::FULL;
    for seg in trace.segments() {
        if !seg.speed.same_point(current) {
            breakdown.transition += overhead.energy(current, seg.speed);
            switches += 1;
            current = seg.speed;
        }
        match seg.kind {
            SegmentKind::Execute { .. } => {
                breakdown.active += power.active_energy(seg.speed, seg.duration());
            }
            SegmentKind::Idle => {
                breakdown.idle += power.idle_energy(seg.duration());
            }
            SegmentKind::Transition => {}
        }
    }
    (breakdown, switches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::Speed;
    use stadvs_sim::{
        ActiveJob, ConstantRatio, Governor, SchedulerView, SimConfig, Simulator, Task,
    };

    struct FullSpeed;
    impl Governor for FullSpeed {
        fn name(&self) -> &str {
            "full"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::FULL
        }
    }

    struct TooSlow;
    impl Governor for TooSlow {
        fn name(&self) -> &str {
            "slow"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::new(0.2).unwrap()
        }
    }

    fn setup() -> (TaskSet, Processor) {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 8.0).unwrap(),
        ])
        .unwrap();
        (tasks, Processor::ideal_continuous())
    }

    #[test]
    fn clean_run_validates() {
        let (tasks, cpu) = setup();
        let sim = Simulator::new(
            tasks.clone(),
            cpu.clone(),
            SimConfig::new(32.0).unwrap().with_trace(true),
        )
        .unwrap();
        let out = sim.run(&mut FullSpeed, &ConstantRatio::new(0.6)).unwrap();
        let report = validate_outcome(&out, &tasks, &cpu);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.jobs_checked, 12);
        assert!(report.to_string().contains("clean"));
    }

    #[test]
    fn misses_are_reported() {
        let (tasks, cpu) = setup();
        let sim = Simulator::new(
            tasks.clone(),
            cpu.clone(),
            SimConfig::new(32.0).unwrap().with_trace(true),
        )
        .unwrap();
        let out = sim.run(&mut TooSlow, &ConstantRatio::new(1.0)).unwrap();
        let report = validate_outcome(&out, &tasks, &cpu);
        assert!(!report.is_clean());
        assert!(report.miss_count() > 0);
        assert_eq!(report.miss_count(), out.miss_count());
    }

    #[test]
    fn tampered_job_count_is_detected() {
        let (tasks, cpu) = setup();
        let sim =
            Simulator::new(tasks.clone(), cpu.clone(), SimConfig::new(32.0).unwrap()).unwrap();
        let mut out = sim.run(&mut FullSpeed, &ConstantRatio::new(0.6)).unwrap();
        out.jobs.pop();
        let report = validate_outcome(&out, &tasks, &cpu);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, Issue::WrongJobCount { .. })));
    }

    #[test]
    fn tampered_actual_breaks_work_conservation() {
        let (tasks, cpu) = setup();
        let sim = Simulator::new(
            tasks.clone(),
            cpu.clone(),
            SimConfig::new(32.0).unwrap().with_trace(true),
        )
        .unwrap();
        let mut out = sim.run(&mut FullSpeed, &ConstantRatio::new(0.6)).unwrap();
        out.jobs[0].actual *= 2.0;
        let report = validate_outcome(&out, &tasks, &cpu);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, Issue::WorkMismatch { .. })));
    }

    #[test]
    fn tampered_wall_time_is_detected() {
        let (tasks, cpu) = setup();
        let sim = Simulator::new(
            tasks.clone(),
            cpu.clone(),
            SimConfig::new(32.0).unwrap().with_trace(true),
        )
        .unwrap();
        let mut out = sim.run(&mut FullSpeed, &ConstantRatio::new(0.6)).unwrap();
        out.jobs[0].wall_time *= 2.0;
        let report = validate_outcome(&out, &tasks, &cpu);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, Issue::WallTimeMismatch { .. })));
    }

    #[test]
    fn discrete_platform_speed_audit() {
        // Run a continuous-speed trace against a discrete platform: the
        // 0.6-speed segments are not operating points of a 2-level platform.
        let (tasks, cpu) = setup();
        let sim = Simulator::new(
            tasks.clone(),
            cpu,
            SimConfig::new(16.0).unwrap().with_trace(true),
        )
        .unwrap();
        struct Fixed;
        impl Governor for Fixed {
            fn name(&self) -> &str {
                "fixed-0.6"
            }
            fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
                Speed::new(0.6).unwrap()
            }
        }
        let out = sim.run(&mut Fixed, &ConstantRatio::new(1.0)).unwrap();
        let two_level = stadvs_power::Processor::uniform_discrete(2).unwrap();
        let report = validate_outcome(&out, &tasks, &two_level);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, Issue::UnavailableSpeed { .. })));
    }

    #[test]
    fn issue_display_nonempty() {
        let issues = [
            Issue::BrokenTimeline { at: 1.0 },
            Issue::WrongJobCount {
                expected: 3,
                found: 2,
            },
        ];
        for i in issues {
            assert!(!i.to_string().is_empty());
        }
    }
}
