//! Minimum feasible static speed from worst-case analysis.

use stadvs_sim::{TaskSet, TIME_EPS};

use crate::schedulability::{busy_period, dbf};

/// The minimum constant speed at which preemptive EDF meets every deadline
/// of `tasks` **in the worst case** — the design-time counterpart of the
/// clairvoyant [`optimal_static_speed`](crate::optimal_static_speed).
///
/// For implicit deadlines this is exactly the utilization `U`; for
/// constrained deadlines it is the supremum of the demand intensity
/// `dbf(t) / t` over **all** `t > 0`. The supremum is found by an iterated
/// horizon: candidate violations of `dbf(t) ≤ s·t` can only occur for
/// `t < Σ (T_i − D_i)·u_i / (s − U)` (from `dbf(t) ≤ t·U + Σ(T_i−D_i)u_i`),
/// so the peak over deadlines inside a window is re-evaluated with the
/// window grown to that bound until it covers it. Checking only the
/// full-speed busy period is **not** enough — at reduced speed the binding
/// deadline can lie beyond it (a bug this crate's randomized
/// simulation-cross-check caught). When the intensity never separates from
/// `U` (the bound diverges), the density `Σ C_i/D_i` is returned — always
/// sufficient since `dbf(t) ≤ density·t`.
///
/// Returns a value in `(0, ∞)`; values above 1 mean the set is infeasible
/// on this processor even at full speed.
///
/// ```
/// use stadvs_sim::{Task, TaskSet};
/// use stadvs_analysis::minimum_static_speed;
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// // Implicit deadlines: the answer is the utilization.
/// let ts = TaskSet::new(vec![Task::new(1.0, 4.0)?, Task::new(1.0, 8.0)?])?;
/// assert!((minimum_static_speed(&ts) - 0.375).abs() < 1e-9);
///
/// // A constrained deadline forces a higher speed than U.
/// let tight = TaskSet::new(vec![Task::with_deadline(1.0, 8.0, 2.0)?])?;
/// assert!((minimum_static_speed(&tight) - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn minimum_static_speed(tasks: &TaskSet) -> f64 {
    let utilization = tasks.utilization();
    let implicit = tasks
        .iter()
        .all(|(_, t)| (t.deadline() - t.period()).abs() <= TIME_EPS);
    if implicit {
        return utilization;
    }

    let density = tasks.density();
    let slack_term: f64 = tasks
        .iter()
        .map(|(_, t)| (t.period() - t.deadline()) * t.utilization())
        .sum();
    let mut horizon = busy_period(tasks)
        .max(tasks.iter().map(|(_, t)| t.deadline()).fold(0.0, f64::max))
        .max(tasks.max_period());
    let give_up = 1.0e6 * tasks.max_period();

    for _ in 0..64 {
        let speed = peak_intensity(tasks, horizon).max(utilization);
        if speed + 1.0e-12 >= density {
            // The density is an unconditional upper bound on the needed
            // speed (`dbf(t) ≤ density·t`), so the supremum is reached.
            return density;
        }
        if speed <= utilization + 1.0e-12 {
            // Intensity never separated from the asymptote inside the
            // window and the violation bound below diverges; fall back to
            // the always-sufficient density.
            return density;
        }
        // Any t with dbf(t) > speed·t satisfies t < slack_term/(speed − U).
        let needed = slack_term / (speed - utilization);
        if horizon + TIME_EPS >= needed {
            return speed;
        }
        if needed > give_up {
            return density;
        }
        horizon = needed;
    }
    density
}

/// Peak of `dbf(d)/d` over the deadlines within `[0, horizon]`.
fn peak_intensity(tasks: &TaskSet, horizon: f64) -> f64 {
    let mut peak: f64 = 0.0;
    for (_, task) in tasks.iter() {
        let mut k = 0.0;
        loop {
            let d = k * task.period() + task.deadline();
            if d > horizon + TIME_EPS {
                break;
            }
            peak = peak.max(dbf(tasks, d) / d);
            k += 1.0;
        }
    }
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::Task;

    fn set(rows: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            rows.iter()
                .map(|&(c, t, d)| Task::with_deadline(c, t, d).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn implicit_deadlines_give_utilization() {
        let ts = set(&[(2.0, 4.0, 4.0), (1.0, 8.0, 8.0)]);
        assert!((minimum_static_speed(&ts) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn constrained_deadlines_raise_the_speed() {
        // dbf(2) = 1 → intensity 0.5 although U = 0.125.
        let ts = set(&[(1.0, 8.0, 2.0)]);
        let s = minimum_static_speed(&ts);
        assert!((s - 0.5).abs() < 1e-12);
        assert!(s > ts.utilization());
    }

    #[test]
    fn speed_is_tight_against_simulation() {
        use stadvs_power::{Processor, Speed};
        use stadvs_sim::{
            ActiveJob, Governor, MissPolicy, SchedulerView, SimConfig, Simulator, WorstCase,
        };
        struct Fixed(Speed);
        impl Governor for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
                self.0
            }
        }
        let ts = set(&[(1.0, 4.0, 3.0), (1.0, 6.0, 5.0), (0.5, 12.0, 2.0)]);
        let s = minimum_static_speed(&ts);
        assert!(s <= 1.0, "set must be feasible at full speed");
        let sim = |speed: f64, policy| {
            let sim = Simulator::new(
                ts.clone(),
                Processor::ideal_continuous(),
                SimConfig::new(48.0).unwrap().with_miss_policy(policy),
            )
            .unwrap();
            sim.run(&mut Fixed(Speed::new(speed).unwrap()), &WorstCase)
        };
        // At the computed speed (plus float headroom): feasible.
        assert!(sim(s + 1e-9, MissPolicy::Fail).is_ok());
        // At 99 % of it: a deadline must break.
        let short = sim(s * 0.99, MissPolicy::Record).unwrap();
        assert!(short.miss_count() > 0, "speed bound is not tight");
    }

    #[test]
    fn peak_intensity_is_exact() {
        // dbf(2) = 1.8 → the binding intensity is exactly 0.9.
        let ts = set(&[(1.8, 4.0, 2.0), (0.2, 8.0, 8.0)]);
        assert!((minimum_static_speed(&ts) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn infeasible_sets_report_above_one() {
        // dbf(2) = 2.3 → no speed ≤ 1 can schedule this.
        let ts = set(&[(1.8, 4.0, 2.0), (0.5, 4.0, 2.0)]);
        assert!(minimum_static_speed(&ts) > 1.0);
    }
}
