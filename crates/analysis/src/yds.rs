//! The Yao–Demers–Shenker (YDS) optimal offline voltage schedule — the
//! clairvoyant energy lower bound the paper family compares against.

use serde::{Deserialize, Serialize};
use stadvs_power::{PowerModel, Speed};

use crate::jobs::JobInstance;

/// One constant-speed block of an offline schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedBlock {
    /// The block's constant speed (normalized; `<= 1` for feasible input).
    pub speed: f64,
    /// The block's duration, in seconds.
    pub duration: f64,
}

/// A piecewise-constant speed schedule (execution blocks only — the
/// remaining time is idle).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpeedSchedule {
    /// Blocks in decreasing-speed order (the order YDS discovers them).
    pub blocks: Vec<SpeedBlock>,
}

impl SpeedSchedule {
    /// Total energy of the schedule under `power` (idle time is free — this
    /// keeps the result a lower bound for platforms with any idle power).
    ///
    /// # Panics
    ///
    /// Panics if a block's speed exceeds 1 by more than tolerance (the input
    /// job set was infeasible at full speed).
    pub fn energy(&self, power: &PowerModel) -> f64 {
        self.blocks
            .iter()
            .map(|b| {
                assert!(
                    b.speed <= 1.0 + 1.0e-9,
                    "YDS speed {} > 1: infeasible input",
                    b.speed
                );
                let s = Speed::clamped(b.speed, Speed::MIN_POSITIVE);
                power.active_energy(s, b.duration)
            })
            .sum()
    }

    /// The highest block speed (the minimal feasible static speed), or 0
    /// for an empty schedule.
    pub fn peak_speed(&self) -> f64 {
        self.blocks.iter().map(|b| b.speed).fold(0.0, f64::max)
    }

    /// Total work executed by the schedule.
    pub fn total_work(&self) -> f64 {
        self.blocks.iter().map(|b| b.speed * b.duration).sum()
    }

    /// Total busy time of the schedule.
    pub fn busy_time(&self) -> f64 {
        self.blocks.iter().map(|b| b.duration).sum()
    }
}

/// Which per-job work figure an offline analysis uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkKind {
    /// The actual demands (clairvoyant bound on the realized workload).
    Actual,
    /// The worst-case demands (static design-time analysis).
    WorstCase,
}

/// Computes the YDS optimal schedule for `jobs`.
///
/// YDS repeatedly finds the *critical interval* — the `[z, z']` maximizing
/// the intensity `g = (Σ work of jobs with [r, d] ⊆ [z, z']) / (z' − z)` —
/// assigns that interval speed `g`, removes its jobs, collapses the interval
/// out of the timeline, and recurses. For convex power the result minimizes
/// total energy over *all* feasible schedules, including every on-line
/// governor in this repository; the test suite enforces that dominance.
///
/// ```
/// use stadvs_power::PowerModel;
/// use stadvs_sim::{ConstantRatio, Task, TaskSet};
/// use stadvs_analysis::{materialize_jobs, yds_schedule, WorkKind};
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let tasks = TaskSet::new(vec![Task::new(2.0, 4.0)?])?;
/// let jobs = materialize_jobs(&tasks, &ConstantRatio::new(1.0), 8.0);
/// let sched = yds_schedule(&jobs, WorkKind::Actual);
/// // U = 0.5 with evenly spread jobs: the optimum runs at 0.5 throughout.
/// assert!((sched.peak_speed() - 0.5).abs() < 1e-9);
/// let e = sched.energy(&PowerModel::normalized_cubic());
/// assert!((e - 8.0 * 0.125).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn yds_schedule(jobs: &[JobInstance], work: WorkKind) -> SpeedSchedule {
    let mut remaining: Vec<(f64, f64, f64)> = jobs
        .iter()
        .filter_map(|j| {
            let w = match work {
                WorkKind::Actual => j.actual,
                WorkKind::WorstCase => j.wcet,
            };
            (w > 0.0).then_some((j.release, j.deadline, w))
        })
        .collect();

    let mut blocks = Vec::new();
    while !remaining.is_empty() {
        let Some((z, z_end, intensity)) = critical_interval(&remaining) else {
            break;
        };
        blocks.push(SpeedBlock {
            speed: intensity,
            duration: z_end - z,
        });
        let len = z_end - z;
        remaining.retain(|&(r, d, _)| !(r >= z - 1e-12 && d <= z_end + 1e-12));
        for item in &mut remaining {
            item.0 = collapse(item.0, z, z_end, len);
            item.1 = collapse(item.1, z, z_end, len);
        }
    }
    blocks.sort_by(|a, b| b.speed.total_cmp(&a.speed));
    SpeedSchedule { blocks }
}

/// The minimal constant speed at which EDF meets every deadline of `jobs` —
/// the *clairvoyant static-optimal* ("oracle") speed. Equal to the first
/// critical interval's intensity.
pub fn optimal_static_speed(jobs: &[JobInstance], work: WorkKind) -> f64 {
    let items: Vec<(f64, f64, f64)> = jobs
        .iter()
        .filter_map(|j| {
            let w = match work {
                WorkKind::Actual => j.actual,
                WorkKind::WorstCase => j.wcet,
            };
            (w > 0.0).then_some((j.release, j.deadline, w))
        })
        .collect();
    critical_interval(&items).map_or(0.0, |(_, _, g)| g)
}

fn collapse(t: f64, z: f64, z_end: f64, len: f64) -> f64 {
    if t <= z {
        t
    } else if t >= z_end {
        t - len
    } else {
        z
    }
}

/// Finds `(z, z', intensity)` maximizing contained work per unit length.
/// `O(n² log n)`: for each distinct release `z`, jobs with `r >= z` are
/// swept in deadline order with a running work sum.
fn critical_interval(items: &[(f64, f64, f64)]) -> Option<(f64, f64, f64)> {
    if items.is_empty() {
        return None;
    }
    let mut releases: Vec<f64> = items.iter().map(|i| i.0).collect();
    releases.sort_by(f64::total_cmp);
    releases.dedup_by(|a, b| (*a - *b).abs() < 1e-15);

    let mut best: Option<(f64, f64, f64)> = None;
    let mut scratch: Vec<(f64, f64)> = Vec::with_capacity(items.len());
    for &z in &releases {
        scratch.clear();
        scratch.extend(
            items
                .iter()
                .filter(|i| i.0 >= z - 1e-15)
                .map(|i| (i.1, i.2)),
        );
        scratch.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut work = 0.0;
        let mut idx = 0;
        while idx < scratch.len() {
            // Accumulate all jobs sharing this deadline before evaluating.
            let d = scratch[idx].0;
            while idx < scratch.len() && (scratch[idx].0 - d).abs() < 1e-15 {
                work += scratch[idx].1;
                idx += 1;
            }
            let span = d - z;
            if span <= 0.0 {
                // Zero-length window with positive work: infeasible input;
                // report an unbounded intensity via a tiny span.
                return Some((z, z + f64::MIN_POSITIVE, f64::INFINITY));
            }
            let g = work / span;
            if best.is_none_or(|(_, _, bg)| g > bg) {
                best = Some((z, d, g));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{JobId, TaskId};

    fn job(task: usize, index: u64, r: f64, d: f64, w: f64) -> JobInstance {
        JobInstance {
            id: JobId {
                task: TaskId(task),
                index,
            },
            release: r,
            deadline: d,
            wcet: w,
            actual: w,
        }
    }

    #[test]
    fn single_job_runs_at_its_density() {
        let jobs = vec![job(0, 0, 0.0, 4.0, 1.0)];
        let s = yds_schedule(&jobs, WorkKind::Actual);
        assert_eq!(s.blocks.len(), 1);
        assert!((s.blocks[0].speed - 0.25).abs() < 1e-12);
        assert!((s.blocks[0].duration - 4.0).abs() < 1e-12);
        assert!((s.total_work() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_two_level_example() {
        // A dense job forces a fast interval; a loose job then spreads out.
        // J1: [0, 2] w=2 (density 1); J2: [0, 10] w=2.
        let jobs = vec![job(0, 0, 0.0, 2.0, 2.0), job(1, 0, 0.0, 10.0, 2.0)];
        let s = yds_schedule(&jobs, WorkKind::Actual);
        assert_eq!(s.blocks.len(), 2);
        // Critical interval [0,2] at speed 1; J2 then has window [0,8]
        // (collapsed) → speed 0.25.
        assert!((s.blocks[0].speed - 1.0).abs() < 1e-12);
        assert!((s.blocks[0].duration - 2.0).abs() < 1e-12);
        assert!((s.blocks[1].speed - 0.25).abs() < 1e-12);
        assert!((s.blocks[1].duration - 8.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_periodic_load_is_flat() {
        let jobs: Vec<JobInstance> = (0..10)
            .map(|k| job(0, k, k as f64, k as f64 + 1.0, 0.5))
            .collect();
        let s = yds_schedule(&jobs, WorkKind::Actual);
        assert!((s.peak_speed() - 0.5).abs() < 1e-12);
        assert!((s.busy_time() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn oracle_static_speed_matches_peak_interval() {
        let jobs = vec![job(0, 0, 0.0, 2.0, 2.0), job(1, 0, 0.0, 10.0, 2.0)];
        assert!((optimal_static_speed(&jobs, WorkKind::Actual) - 1.0).abs() < 1e-12);
        let loose = vec![job(0, 0, 0.0, 10.0, 2.0)];
        assert!((optimal_static_speed(&loose, WorkKind::Actual) - 0.2).abs() < 1e-12);
        assert_eq!(optimal_static_speed(&[], WorkKind::Actual), 0.0);
    }

    #[test]
    fn worst_case_kind_uses_wcet() {
        let mut j = job(0, 0, 0.0, 4.0, 2.0);
        j.actual = 1.0;
        let s_actual = yds_schedule(&[j], WorkKind::Actual);
        let s_wc = yds_schedule(&[j], WorkKind::WorstCase);
        assert!((s_actual.peak_speed() - 0.25).abs() < 1e-12);
        assert!((s_wc.peak_speed() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn energy_is_convex_optimal_for_simple_case() {
        use stadvs_power::PowerModel;
        // Two identical jobs with disjoint windows: flat speed is optimal.
        let jobs = vec![job(0, 0, 0.0, 5.0, 1.0), job(0, 1, 5.0, 10.0, 1.0)];
        let s = yds_schedule(&jobs, WorkKind::Actual);
        let e = s.energy(&PowerModel::normalized_cubic());
        // 10 s at speed 0.2: E = 10 * 0.008 = 0.08.
        assert!((e - 0.08).abs() < 1e-12);
    }

    #[test]
    fn zero_work_jobs_are_ignored() {
        let mut j = job(0, 0, 0.0, 4.0, 1.0);
        j.actual = 0.0;
        let s = yds_schedule(&[j], WorkKind::Actual);
        assert!(s.blocks.is_empty());
        assert_eq!(s.peak_speed(), 0.0);
    }

    #[test]
    fn overlapping_mixed_windows() {
        // J1 [0,4] w=1, J2 [2,6] w=1, J3 [0,12] w=1.
        let jobs = vec![
            job(0, 0, 0.0, 4.0, 1.0),
            job(1, 0, 2.0, 6.0, 1.0),
            job(2, 0, 0.0, 12.0, 1.0),
        ];
        let s = yds_schedule(&jobs, WorkKind::Actual);
        // Total work 3 over horizon 12; peak intensity: [0,6] contains J1+J2
        // (2 work / 6) = 1/3 vs [0,4]=0.25 vs [2,6]=0.25 vs [0,12]=0.25.
        assert!((s.peak_speed() - (1.0 / 3.0)).abs() < 1e-9);
        // Work conservation.
        assert!((s.total_work() - 3.0).abs() < 1e-9);
    }
}
