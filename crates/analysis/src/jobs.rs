//! Materializing the concrete job list a simulation will execute.

use serde::{Deserialize, Serialize};
use stadvs_sim::{ExecutionSource, JobId, TaskSet};

/// One concrete job instance: the clairvoyant view of a workload.
///
/// Because [`ExecutionSource`] implementations are deterministic per
/// `(task, index)`, the exact job list any simulation will execute can be
/// produced *ahead of time*. On-line governors never see this; off-line
/// bounds (the YDS optimal schedule, the oracle static speed) are computed
/// from it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobInstance {
    /// The job's identity.
    pub id: JobId,
    /// Release instant, in seconds.
    pub release: f64,
    /// Absolute deadline, in seconds.
    pub deadline: f64,
    /// Worst-case work (full-speed seconds).
    pub wcet: f64,
    /// Actual work (full-speed seconds), clamped into `[0, wcet]`.
    pub actual: f64,
}

/// Lists every job released in `[0, horizon)`, exactly as the simulator
/// generates them (same ids, releases, deadlines, and actual demands).
///
/// # Panics
///
/// Panics if `horizon` is not finite and positive.
///
/// ```
/// use stadvs_sim::{ConstantRatio, Task, TaskSet};
/// use stadvs_analysis::materialize_jobs;
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let tasks = TaskSet::new(vec![Task::new(1.0, 4.0)?])?;
/// let jobs = materialize_jobs(&tasks, &ConstantRatio::new(0.5), 10.0);
/// assert_eq!(jobs.len(), 3); // releases at 0, 4, 8
/// assert_eq!(jobs[1].release, 4.0);
/// assert_eq!(jobs[1].actual, 0.5);
/// # Ok(())
/// # }
/// ```
pub fn materialize_jobs<E>(tasks: &TaskSet, exec: &E, horizon: f64) -> Vec<JobInstance>
where
    E: ExecutionSource + ?Sized,
{
    assert!(
        horizon.is_finite() && horizon > 0.0,
        "horizon {horizon} must be finite and positive"
    );
    let mut jobs = Vec::new();
    for (id, task) in tasks.iter() {
        let mut index = 0u64;
        loop {
            let release = task.release_of(index);
            if release >= horizon {
                break;
            }
            let actual = exec.actual_work(id, task, index).clamp(0.0, task.wcet());
            jobs.push(JobInstance {
                id: JobId { task: id, index },
                release,
                deadline: release + task.deadline(),
                wcet: task.wcet(),
                actual,
            });
            index += 1;
        }
    }
    jobs.sort_by(|a, b| {
        a.release
            .total_cmp(&b.release)
            .then(a.id.task.cmp(&b.id.task))
            .then(a.id.index.cmp(&b.id.index))
    });
    jobs
}

/// Keeps only jobs whose deadline falls within the horizon — the subset any
/// valid lower bound must be computed on (the simulator may leave later jobs
/// partially executed at the horizon).
pub fn due_within(jobs: &[JobInstance], horizon: f64) -> Vec<JobInstance> {
    jobs.iter()
        .copied()
        .filter(|j| j.deadline <= horizon + 1.0e-9)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::{ConstantRatio, Task, WorstCase};

    fn tasks() -> TaskSet {
        TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(2.0, 6.0).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn counts_match_periods() {
        let jobs = materialize_jobs(&tasks(), &WorstCase, 12.0);
        // T0: 0,4,8 → 3 jobs; T1: 0,6 → 2 jobs.
        assert_eq!(jobs.len(), 5);
        assert_eq!(jobs.iter().filter(|j| j.id.task.0 == 0).count(), 3);
    }

    #[test]
    fn sorted_by_release_then_task() {
        let jobs = materialize_jobs(&tasks(), &WorstCase, 12.0);
        for w in jobs.windows(2) {
            assert!(w[0].release <= w[1].release);
        }
        // Simultaneous releases at t=0: T0 before T1.
        assert_eq!(jobs[0].id.task.0, 0);
        assert_eq!(jobs[1].id.task.0, 1);
    }

    #[test]
    fn actual_follows_source() {
        let jobs = materialize_jobs(&tasks(), &ConstantRatio::new(0.25), 6.0);
        for j in &jobs {
            assert!((j.actual - 0.25 * j.wcet).abs() < 1e-12);
        }
    }

    #[test]
    fn due_within_filters_late_deadlines() {
        let jobs = materialize_jobs(&tasks(), &WorstCase, 12.0);
        let due = due_within(&jobs, 12.0);
        // T0#2 has deadline 12 (included); T1#1 released at 6, deadline 12.
        assert_eq!(due.len(), 5);
        let due_short = due_within(&jobs, 10.0);
        assert_eq!(due_short.len(), 3);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn bad_horizon_panics() {
        let _ = materialize_jobs(&tasks(), &WorstCase, -1.0);
    }
}
