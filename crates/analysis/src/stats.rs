//! Small statistics helpers for experiment replication.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected; 0 for `n < 2`).
    pub std_dev: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Summarizes the values produced by `iter`.
    ///
    /// Returns `None` for an empty sample.
    pub fn of<I: IntoIterator<Item = f64>>(iter: I) -> Option<Summary> {
        let values: Vec<f64> = iter.into_iter().collect();
        if values.is_empty() {
            return None;
        }
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        Some(Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        })
    }

    /// Half-width of the ~95 % confidence interval of the mean
    /// (`1.96 · σ / √n`; normal approximation).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} (n={}, min {:.4}, max {:.4})",
            self.mean,
            self.ci95(),
            self.n,
            self.min,
            self.max
        )
    }
}

/// Divides each value by `baseline`, the standard "normalized energy"
/// transformation (baseline = the no-DVS energy).
///
/// # Panics
///
/// Panics if `baseline` is zero, negative, or not finite.
pub fn normalize(values: &[f64], baseline: f64) -> Vec<f64> {
    assert!(
        baseline.is_finite() && baseline > 0.0,
        "baseline {baseline} must be finite and positive"
    );
    values.iter().map(|v| v / baseline).collect()
}

/// Geometric mean (for averaging normalized ratios across workloads).
///
/// Returns `None` for an empty sample or any non-positive value.
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev of this classic set is ~2.138.
        assert!((s.std_dev - 2.138089935299395).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95() > 0.0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn empty_and_singleton_samples() {
        assert!(Summary::of(std::iter::empty()).is_none());
        let s = Summary::of([3.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn normalize_divides() {
        assert_eq!(normalize(&[2.0, 4.0], 4.0), vec![0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn normalize_rejects_zero_baseline() {
        let _ = normalize(&[1.0], 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), None);
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
    }
}
