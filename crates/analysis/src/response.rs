//! Response-time statistics of a simulation outcome.

use std::fmt;

use serde::{Deserialize, Serialize};
use stadvs_sim::{SimOutcome, TaskId, TaskSet};

/// Observed response-time statistics of one task over one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskResponse {
    /// The task.
    pub task: TaskId,
    /// Completed jobs observed.
    pub jobs: usize,
    /// Best (smallest) response time, in seconds.
    pub best: f64,
    /// Mean response time, in seconds.
    pub mean: f64,
    /// Worst observed response time, in seconds.
    pub worst: f64,
    /// The task's relative deadline, for margin computations.
    pub deadline: f64,
}

impl TaskResponse {
    /// Worst-case margin `1 − worst/deadline` (negative means a miss).
    pub fn worst_margin(&self) -> f64 {
        1.0 - self.worst / self.deadline
    }
}

impl fmt::Display for TaskResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} jobs, response {:.3}/{:.3}/{:.3} ms of {:.3} ms ({:.0} % margin)",
            self.task,
            self.jobs,
            self.best * 1e3,
            self.mean * 1e3,
            self.worst * 1e3,
            self.deadline * 1e3,
            self.worst_margin() * 100.0
        )
    }
}

/// Per-task response-time statistics of `outcome`.
///
/// DVS deliberately trades response-time margin for energy — jobs finish
/// close to (but never past) their deadlines. This profile quantifies the
/// trade: under `no-dvs` the worst margins are large; under an aggressive
/// governor they approach zero while staying non-negative.
///
/// Tasks with no completed job in the outcome are omitted.
pub fn response_profile(outcome: &SimOutcome, tasks: &TaskSet) -> Vec<TaskResponse> {
    tasks
        .iter()
        .filter_map(|(id, task)| {
            let times: Vec<f64> = outcome
                .jobs
                .iter()
                .filter(|r| r.id.task == id)
                .filter_map(|r| r.response_time())
                .collect();
            if times.is_empty() {
                return None;
            }
            Some(TaskResponse {
                task: id,
                jobs: times.len(),
                best: times.iter().copied().fold(f64::INFINITY, f64::min),
                mean: times.iter().sum::<f64>() / times.len() as f64,
                worst: times.iter().copied().fold(0.0, f64::max),
                deadline: task.deadline(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_power::{Processor, Speed};
    use stadvs_sim::{
        ActiveJob, ConstantRatio, Governor, SchedulerView, SimConfig, Simulator, Task,
    };

    struct Fixed(f64);
    impl Governor for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
            Speed::new(self.0).unwrap()
        }
    }

    fn run(speed: f64) -> (SimOutcome, TaskSet) {
        let tasks = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 8.0).unwrap(),
        ])
        .unwrap();
        let sim = Simulator::new(
            tasks.clone(),
            Processor::ideal_continuous(),
            SimConfig::new(32.0).unwrap(),
        )
        .unwrap();
        (
            sim.run(&mut Fixed(speed), &ConstantRatio::new(1.0))
                .unwrap(),
            tasks,
        )
    }

    #[test]
    fn slower_speeds_shrink_margins() {
        let (fast, tasks) = run(1.0);
        let (slow, _) = run(0.375); // exactly U
        let fast_profile = response_profile(&fast, &tasks);
        let slow_profile = response_profile(&slow, &tasks);
        assert_eq!(fast_profile.len(), 2);
        for (f, s) in fast_profile.iter().zip(&slow_profile) {
            assert!(f.worst < s.worst, "slowing must lengthen responses");
            assert!(s.worst_margin() >= -1e-9, "still no misses at speed U");
            assert!(f.best <= f.mean && f.mean <= f.worst);
        }
    }

    #[test]
    fn display_and_counts() {
        let (out, tasks) = run(1.0);
        let profile = response_profile(&out, &tasks);
        // 8 jobs of T0, 4 of T1 over 32 s.
        assert_eq!(profile[0].jobs, 8);
        assert_eq!(profile[1].jobs, 4);
        assert!(profile[0].to_string().contains("margin"));
    }
}
