//! EDF schedulability analysis: utilization bound, demand-bound function,
//! and QPA (Quick Processor-demand Analysis).

use serde::{Deserialize, Serialize};
use stadvs_sim::{TaskSet, TIME_EPS};

/// The verdict of a schedulability test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulabilityTest {
    /// All deadlines are guaranteed under preemptive EDF at full speed.
    Schedulable,
    /// A point in time where processor demand exceeds supply.
    Unschedulable {
        /// A time `t` with `dbf(t) > t`.
        counterexample: f64,
    },
}

impl SchedulabilityTest {
    /// Whether the verdict is schedulable.
    pub fn is_schedulable(&self) -> bool {
        matches!(self, SchedulabilityTest::Schedulable)
    }
}

/// The processor demand bound function for synchronous periodic tasks:
/// `dbf(t) = Σ_i max(0, floor((t − D_i)/T_i) + 1) · C_i` — the total work
/// that must complete within `[0, t]` (Baruah–Rosier–Howell).
///
/// ```
/// use stadvs_sim::{Task, TaskSet};
/// use stadvs_analysis::dbf;
///
/// # fn main() -> Result<(), stadvs_sim::SimError> {
/// let ts = TaskSet::new(vec![Task::new(1.0, 4.0)?, Task::new(2.0, 6.0)?])?;
/// assert_eq!(dbf(&ts, 4.0), 1.0);       // one T0 job due
/// assert_eq!(dbf(&ts, 6.0), 3.0);       // plus one T1 job
/// assert_eq!(dbf(&ts, 12.0), 3.0 + 2.0 + 2.0); // 3×T0 + 2×T1
/// # Ok(())
/// # }
/// ```
pub fn dbf(tasks: &TaskSet, t: f64) -> f64 {
    let mut demand = 0.0;
    for (_, task) in tasks.iter() {
        let d = task.deadline();
        if t + TIME_EPS >= d {
            let k = ((t - d + TIME_EPS) / task.period()).floor() + 1.0;
            demand += k * task.wcet();
        }
    }
    demand
}

/// EDF schedulability at full speed for (possibly constrained-deadline)
/// periodic task sets, via the utilization test and QPA.
///
/// * implicit deadlines: schedulable iff `U ≤ 1`;
/// * constrained deadlines: `U ≤ 1` necessary, then QPA (Zhang & Burns)
///   walks the demand-bound function backwards from the analysis bound `L`
///   and finds a violation iff one exists.
///
/// `L` is the smaller of the synchronous busy-period length and the
/// La bound `max(D_max, Σ(T_i − D_i)·U_i / (1 − U))`; with `U = 1` and
/// constrained deadlines, the hyperperiod is used (falling back to the busy
/// period if periods are incommensurable).
pub fn edf_schedulable(tasks: &TaskSet) -> SchedulabilityTest {
    let u = tasks.utilization();
    if u > 1.0 + 1.0e-9 {
        return SchedulabilityTest::Unschedulable {
            counterexample: f64::INFINITY,
        };
    }
    let implicit = tasks
        .iter()
        .all(|(_, t)| (t.deadline() - t.period()).abs() <= TIME_EPS);
    if implicit {
        return SchedulabilityTest::Schedulable;
    }

    let bound = analysis_bound(tasks, u);
    qpa(tasks, bound)
}

fn analysis_bound(tasks: &TaskSet, u: f64) -> f64 {
    let d_max = tasks.iter().map(|(_, t)| t.deadline()).fold(0.0, f64::max);
    let la = if u < 1.0 - 1.0e-12 {
        let num: f64 = tasks
            .iter()
            .map(|(_, t)| (t.period() - t.deadline()) * t.utilization())
            .sum();
        d_max.max(num / (1.0 - u))
    } else {
        tasks.hyperperiod().unwrap_or(f64::INFINITY).max(d_max)
    };
    la.min(busy_period(tasks)).max(d_max)
}

/// Length of the synchronous busy period: the fixed point of
/// `w ← Σ ceil(w/T_i)·C_i`.
pub fn busy_period(tasks: &TaskSet) -> f64 {
    let mut w: f64 = tasks.iter().map(|(_, t)| t.wcet()).sum();
    for _ in 0..10_000 {
        let next: f64 = tasks
            .iter()
            .map(|(_, t)| ((w - TIME_EPS) / t.period()).ceil().max(1.0) * t.wcet())
            .sum();
        if (next - w).abs() <= TIME_EPS {
            return next;
        }
        w = next;
    }
    w // U == 1 may not converge; callers cap with other bounds
}

/// QPA: walks `t` down from the largest deadline below `bound`, following
/// `h(t) = dbf(t)`; the set is schedulable iff the walk reaches the
/// smallest deadline without finding `dbf(t) > t`.
fn qpa(tasks: &TaskSet, bound: f64) -> SchedulabilityTest {
    let d_min = tasks
        .iter()
        .map(|(_, t)| t.deadline())
        .fold(f64::INFINITY, f64::min);
    let Some(mut t) = last_deadline_before(tasks, bound + TIME_EPS) else {
        return SchedulabilityTest::Schedulable;
    };
    // Guard against pathological float walks.
    for _ in 0..1_000_000 {
        let h = dbf(tasks, t);
        if h > t + TIME_EPS {
            return SchedulabilityTest::Unschedulable { counterexample: t };
        }
        if h <= d_min + TIME_EPS {
            return SchedulabilityTest::Schedulable;
        }
        if h < t - TIME_EPS {
            t = h;
        } else {
            match last_deadline_before(tasks, t) {
                Some(prev) => t = prev,
                None => return SchedulabilityTest::Schedulable,
            }
        }
    }
    SchedulabilityTest::Schedulable
}

/// The largest absolute deadline strictly below `t` (synchronous pattern).
fn last_deadline_before(tasks: &TaskSet, t: f64) -> Option<f64> {
    let mut best: Option<f64> = None;
    for (_, task) in tasks.iter() {
        let d = task.deadline();
        if t <= d + TIME_EPS {
            continue;
        }
        // Largest k with k·T + D < t.
        let k = ((t - d - TIME_EPS) / task.period()).floor().max(0.0);
        let cand = k * task.period() + d;
        if cand < t - TIME_EPS {
            best = Some(best.map_or(cand, |b: f64| b.max(cand)));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::Task;

    fn set(rows: &[(f64, f64, f64)]) -> TaskSet {
        TaskSet::new(
            rows.iter()
                .map(|&(c, t, d)| Task::with_deadline(c, t, d).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn implicit_deadline_utilization_rule() {
        let ok = set(&[(2.0, 4.0, 4.0), (2.0, 4.0, 4.0)]); // U = 1
        assert!(edf_schedulable(&ok).is_schedulable());
        let under = set(&[(1.0, 4.0, 4.0)]);
        assert!(edf_schedulable(&under).is_schedulable());
    }

    #[test]
    fn constrained_deadline_violation_is_found() {
        // U = 0.75, but both jobs must finish within 2: dbf(2) = 3 > 2.
        let bad = set(&[(1.5, 4.0, 2.0), (1.5, 4.0, 2.0)]);
        match edf_schedulable(&bad) {
            SchedulabilityTest::Unschedulable { counterexample } => {
                assert!(dbf(&bad, counterexample) > counterexample);
            }
            SchedulabilityTest::Schedulable => panic!("missed violation"),
        }
    }

    #[test]
    fn constrained_deadline_feasible_set_passes() {
        let ok = set(&[(1.0, 4.0, 2.0), (1.0, 8.0, 6.0)]);
        assert!(edf_schedulable(&ok).is_schedulable());
    }

    #[test]
    fn dbf_steps_at_deadlines() {
        let ts = set(&[(1.0, 4.0, 3.0)]);
        assert_eq!(dbf(&ts, 2.9), 0.0);
        assert_eq!(dbf(&ts, 3.0), 1.0);
        assert_eq!(dbf(&ts, 6.9), 1.0);
        assert_eq!(dbf(&ts, 7.0), 2.0);
    }

    #[test]
    fn busy_period_of_half_loaded_set() {
        // C=1, T=4: busy period is 1 (single job).
        let ts = set(&[(1.0, 4.0, 4.0)]);
        assert!((busy_period(&ts) - 1.0).abs() < 1e-9);
        // Two tasks (1,3), (1,4): w converges to 2 (1+1, then ceil checks).
        let ts2 = set(&[(1.0, 3.0, 3.0), (1.0, 4.0, 4.0)]);
        let w = busy_period(&ts2);
        assert!((w - 2.0).abs() < 1e-9, "busy period {w}");
    }

    #[test]
    fn qpa_agrees_with_brute_force_on_random_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..200 {
            let n = rng.gen_range(2..6);
            let rows: Vec<(f64, f64, f64)> = (0..n)
                .map(|_| {
                    let period = rng.gen_range(2.0..16.0_f64).round();
                    let wcet = rng.gen_range(0.2..(period * 0.5));
                    let deadline = rng.gen_range(wcet..=period);
                    (wcet, period, deadline)
                })
                .collect();
            let ts = set(&rows);
            if ts.utilization() > 1.0 {
                continue;
            }
            let verdict = edf_schedulable(&ts).is_schedulable();
            let brute = brute_force(&ts);
            assert_eq!(verdict, brute, "disagreement on {rows:?}");
        }
    }

    /// Checks dbf(t) <= t at every deadline up to the analysis bound (the
    /// same range QPA covers — this validates the QPA *walk*, which is the
    /// error-prone part; the bound itself is the published result).
    fn brute_force(ts: &TaskSet) -> bool {
        let horizon = analysis_bound(ts, ts.utilization());
        let mut points = Vec::new();
        for (_, task) in ts.iter() {
            let mut k = 0.0;
            loop {
                let d = k * task.period() + task.deadline();
                if d > horizon + 1e-9 {
                    break;
                }
                points.push(d);
                k += 1.0;
            }
        }
        points.iter().all(|&t| dbf(ts, t) <= t + 1e-9)
    }
}
