//! Order-stable floating-point accumulation.
//!
//! f64 addition is not associative, so the value of a sum depends on the
//! order its terms arrive in. Inside the determinism-bound crates that
//! order is pinned by construction (Vec/BTreeMap iteration), but any code
//! that aggregates results from an *unordered* source — a hash map, a
//! work-stealing thread pool, a future rayon fleet — must first impose an
//! order, or the golden traces stop being bit-identical across runs. The
//! `unordered-float-reduction` lint points here.
//!
//! [`stable_sum`] makes the result independent of input order by sorting
//! under IEEE total order before accumulating; [`compensated_sum`] keeps
//! a given order but tracks the rounding error (Neumaier's variant of
//! Kahan summation), for long aggregations where naive accumulation
//! drifts.

/// Sums `values` independently of their input order.
///
/// The terms are sorted under [`f64::total_cmp`] and then accumulated
/// with error compensation, so any permutation of the same multiset of
/// values yields the same bits. Use this when aggregating from an
/// unordered source (hash map values, parallel workers).
///
/// An empty slice sums to `0.0`.
pub fn stable_sum(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable_by(f64::total_cmp);
    compensated_sum(&sorted)
}

/// Sums `values` in the given order with Neumaier error compensation.
///
/// The compensation term recovers the low-order bits lost when a small
/// term meets a large running sum, which keeps long aggregations (per-job
/// energies over millions of events) from drifting. The result still
/// depends on input order — pair with a sort, or use [`stable_sum`], when
/// the source is unordered.
pub fn compensated_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0f64;
    let mut compensation = 0.0f64;
    for &v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            compensation += (sum - t) + v;
        } else {
            compensation += (v - t) + sum;
        }
        sum = t;
    }
    // Once the running sum leaves the finite range the compensation term
    // is `inf - inf` = NaN; the uncompensated sum (±inf or NaN) is the
    // right answer there.
    if sum.is_finite() {
        sum + compensation
    } else {
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_sum_is_permutation_invariant() {
        let forward = [1e16, 1.0, -1e16, 0.25, 3.5, -0.125];
        let mut shuffled = forward;
        shuffled.reverse();
        shuffled.swap(1, 3);
        assert_eq!(
            stable_sum(&forward).to_bits(),
            stable_sum(&shuffled).to_bits()
        );
    }

    #[test]
    fn compensated_sum_recovers_cancelled_bits() {
        // Naive left-to-right accumulation loses the 1.0 entirely.
        let values = [1e16, 1.0, -1e16];
        let naive: f64 = values.iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(compensated_sum(&values), 1.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(stable_sum(&[]), 0.0);
        assert_eq!(stable_sum(&[2.5]), 2.5);
        assert_eq!(compensated_sum(&[]), 0.0);
    }

    #[test]
    fn matches_naive_sum_on_benign_data() {
        let values = [0.5, 0.25, 0.125, 4.0];
        assert_eq!(stable_sum(&values), 4.875);
        assert_eq!(compensated_sum(&values), 4.875);
    }

    #[test]
    fn handles_special_values() {
        assert!(stable_sum(&[f64::NAN, 1.0]).is_nan());
        assert_eq!(stable_sum(&[f64::INFINITY, 1.0]), f64::INFINITY);
    }
}
