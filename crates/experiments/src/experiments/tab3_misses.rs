//! `tab3_misses` — the hard-real-time audit.
//!
//! Every governor, across a stress mix of utilizations and demand
//! patterns, with full trace recording and the independent
//! `stadvs-analysis` audit: deadline misses, work-conservation violations,
//! speed-availability violations, broken timelines. Every row must read
//! zero for a hard-real-time claim to stand.

use stadvs_analysis::validate_outcome;
use stadvs_power::Processor;
use stadvs_sim::{SimConfig, Simulator};
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{make_governor, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// The stress mix: (utilization, pattern label, pattern).
pub fn stress_mix() -> Vec<(f64, DemandPattern)> {
    vec![
        (0.3, DemandPattern::Uniform { min: 0.1, max: 1.0 }),
        (0.7, DemandPattern::Uniform { min: 0.5, max: 1.0 }),
        (0.9, DemandPattern::Uniform { min: 0.2, max: 1.0 }),
        (1.0, DemandPattern::Constant { ratio: 1.0 }),
        (
            1.0,
            DemandPattern::Bursty {
                low: 0.1,
                high: 1.0,
                burst_jobs: 10,
                duty: 0.5,
            },
        ),
    ]
}

/// Runs the audit. Columns: jobs simulated, deadline misses, audit issues.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "tab3_misses — hard-real-time audit (independent trace validation)",
        "governor",
        vec![
            "jobs".to_string(),
            "deadline misses".to_string(),
            "audit issues".to_string(),
            "min margin (ms)".to_string(),
        ],
    );
    let processor = Processor::ideal_continuous();
    for name in STANDARD_LINEUP {
        let mut jobs = 0usize;
        let mut misses = 0usize;
        let mut issues = 0usize;
        let mut min_margin = f64::INFINITY;
        for (mi, (u, pattern)) in stress_mix().into_iter().enumerate() {
            for rep in 0..opts.replications {
                let case =
                    WorkloadCase::synthetic(6, u, pattern.clone(), (mi * 1_000 + rep) as u64);
                let sim = Simulator::new(
                    case.tasks.clone(),
                    processor.clone(),
                    SimConfig::new(opts.horizon)
                        .expect("valid horizon")
                        .with_trace(true),
                )
                .expect("feasible");
                let mut governor = make_governor(name).expect("lineup resolves");
                let outcome = sim
                    .run(governor.as_mut(), &case.exec)
                    .expect("simulation succeeds");
                let report = validate_outcome(&outcome, &case.tasks, &processor);
                jobs += outcome.jobs.len();
                misses += outcome.miss_count();
                issues += report.issues.len();
                if let Some(m) = outcome.min_margin() {
                    min_margin = min_margin.min(m);
                }
            }
        }
        table.push_row(
            name.to_string(),
            vec![
                jobs as f64,
                misses as f64,
                issues as f64,
                min_margin * 1.0e3,
            ],
        );
    }
    table.note(format!(
        "stress mix: U ∈ {{0.3, 0.7, 0.9, 1.0}} incl. full worst case and bursty patterns, \
         {} replications each, horizon {} s; a negative minimum margin would be a miss",
        opts.replications, opts.horizon
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_governor_passes_the_audit() {
        let table = run(&RunOptions::quick());
        for (gov, values) in &table.rows {
            assert_eq!(values[1], 0.0, "{gov} missed deadlines");
            assert_eq!(values[2], 0.0, "{gov} has audit issues");
            assert!(values[3] >= 0.0, "{gov} has negative margin");
            assert!(values[0] > 0.0);
        }
    }
}
