//! `fig8_cores` — normalized energy vs core count under partitioned
//! EDF-DVS.
//!
//! The multiprocessor extension of the evaluation: union workloads of
//! five tasks per core at a worst-case utilization of 0.5 per core are
//! partitioned onto {1, 2, 4, 8} identical cores by first-fit-decreasing
//! and worst-fit-decreasing, and every governor of the standard lineup
//! runs with one fresh instance per core. Energy is normalized against
//! `no-dvs` on the *same* platform and partition; on the ideal
//! continuous processor (no idle draw) the `no-dvs` denominator is
//! partition-invariant, so rows are cross-comparable.
//!
//! Expected shape: the two 1-core rows coincide (any partitioner is the
//! identity on one core), and at every core count the balanced WFD
//! packing is no worse than the dense FFD packing for the DVS governors —
//! spreading load lowers per-core speeds, and convex (cubic) power makes
//! many slow cores cheaper than few fast ones. The admission notes pin
//! that every task is admitted and no deadline is ever missed.

use stadvs_power::{Platform, Processor};
use stadvs_workload::{partitioner_by_name, DemandPattern};

use crate::experiments::RunOptions;
use crate::runner::{PlatformComparison, PlatformWorkload, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Tasks per core of every union workload.
pub const N_TASKS_PER_CORE: usize = 5;
/// Worst-case utilization contributed per core. At this load every union
/// workload is fully admitted by both partitioners (a rejected task would
/// need utilization above `0.5 m / (m - 1) >= 0.571`, but no single task
/// exceeds its sub-set's total of 0.5).
pub const UTIL_PER_CORE: f64 = 0.5;
/// The platform sizes swept.
pub const CORE_COUNTS: &[usize] = &[1, 2, 4, 8];
/// The partitioners compared, in row order.
pub const PARTITIONERS: &[&str] = &["ffd", "wfd"];

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "fig8_cores — normalized energy vs core count (partitioned EDF-DVS, \
         5 tasks/core, U = 0.5/core)",
        "platform",
        STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    for &cores in CORE_COUNTS {
        // The same union workloads for both partitioners, so an FFD/WFD
        // row pair differs only in the task-to-core assignment.
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic_union(
                    cores,
                    N_TASKS_PER_CORE,
                    UTIL_PER_CORE,
                    DemandPattern::Uniform { min: 0.2, max: 1.0 },
                    rep as u64,
                )
            })
            .collect();
        for &pname in PARTITIONERS {
            let partitioner = partitioner_by_name(pname).expect("registered partitioner");
            let workloads: Vec<PlatformWorkload> = cases
                .iter()
                .cloned()
                .map(|case| PlatformWorkload::partitioned(case, partitioner.as_ref(), cores))
                .collect();
            for w in &workloads {
                assert!(
                    w.partition.admitted(),
                    "{cores}-core {pname} partition rejected a task at U = {UTIL_PER_CORE}/core"
                );
            }
            let platform = Platform::homogeneous(cores, Processor::ideal_continuous())
                .expect("core counts are positive");
            let comparison = PlatformComparison::new(platform, opts.horizon);
            let agg = comparison.run_cases(&workloads);
            let misses: usize = agg.iter().map(|a| a.total_misses).sum();
            let values: Vec<f64> = STANDARD_LINEUP
                .iter()
                .map(|name| {
                    agg.iter()
                        .find(|a| &a.name == name)
                        .map_or(f64::NAN, |a| a.mean_normalized)
                })
                .collect();
            let (lo, hi, used) = utilization_spread(&workloads[0]);
            table.push_row(format!("{cores}-{pname}"), values);
            table.note(format!(
                "{cores}-{pname}: misses {misses}, rep-0 busy cores {used}/{cores}, \
                 rep-0 per-core utilization [{lo:.3}, {hi:.3}]"
            ));
        }
    }
    table.note(format!(
        "{} replications per platform, horizon {} s, homogeneous ideal \
         continuous cores, one fresh governor instance per core; energy \
         normalized against no-dvs on the same platform and partition",
        opts.replications, opts.horizon
    ));
    table
}

/// Min/max per-core WCET utilization over busy cores, plus the busy count.
fn utilization_spread(workload: &PlatformWorkload) -> (f64, f64, usize) {
    let busy: Vec<f64> = workload
        .partition
        .cores()
        .iter()
        .filter(|c| !c.is_idle())
        .map(|c| c.utilization())
        .collect();
    let lo = busy.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = busy.iter().copied().fold(0.0, f64::max);
    (lo, hi, busy.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_sweep_shape_and_partitioning_invariants() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), CORE_COUNTS.len() * PARTITIONERS.len());
        // Full admission, zero misses, everywhere.
        for note in table.notes.iter().take(table.rows.len()) {
            assert!(note.contains("misses 0"), "{note}");
        }
        // One core: the partitioner cannot matter.
        for name in STANDARD_LINEUP {
            let ffd = table.value("1-ffd", name).unwrap();
            let wfd = table.value("1-wfd", name).unwrap();
            assert!((ffd - wfd).abs() < 1e-12, "{name}: {ffd} vs {wfd}");
        }
        // Every row: no-dvs defines the scale, DVS governors beat it.
        for &cores in CORE_COUNTS {
            for &pname in PARTITIONERS {
                let key = format!("{cores}-{pname}");
                assert!((table.value(&key, "no-dvs").unwrap() - 1.0).abs() < 1e-9);
                let st = table.value(&key, "st-edf").unwrap();
                let stat = table.value(&key, "static-edf").unwrap();
                assert!(st < stat, "{key}: st-edf {st} >= static-edf {stat}");
            }
        }
        // The headline: on many cores the balanced WFD packing saves more
        // energy than the dense FFD packing (convex power).
        let ffd8 = table.value("8-ffd", "st-edf").unwrap();
        let wfd8 = table.value("8-wfd", "st-edf").unwrap();
        assert!(wfd8 <= ffd8 + 1e-9, "8 cores: wfd {wfd8} > ffd {ffd8}");
        let ffd8_static = table.value("8-ffd", "static-edf").unwrap();
        let wfd8_static = table.value("8-wfd", "static-edf").unwrap();
        assert!(wfd8_static <= ffd8_static + 1e-9);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&RunOptions::quick());
        let b = run(&RunOptions::quick());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.notes, b.notes);
    }
}
