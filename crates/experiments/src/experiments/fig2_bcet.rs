//! `fig2_bcet` — normalized energy vs BCET/WCET ratio.
//!
//! Fixed utilization 0.7; the execution demand of every job is uniform in
//! `[ratio, 1]·WCET` with the ratio swept from 0.1 (wildly varying demand)
//! to 1.0 (every job at worst case). Expected shape: the dynamic schemes'
//! advantage over `static-edf` grows as the ratio falls; at ratio 1.0 all
//! reclaiming-based schemes collapse onto static while `la-edf` pays a
//! catch-up penalty.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;
/// BCET/WCET sweep points.
pub const RATIOS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let comparison = Comparison::new(Processor::ideal_continuous(), opts.horizon);
    let mut table = Table::new(
        "fig2_bcet — normalized energy vs BCET/WCET ratio (8 tasks, U = 0.7)",
        "BCET/WCET",
        STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (ri, &ratio) in RATIOS.iter().enumerate() {
        let pattern = DemandPattern::Uniform {
            min: ratio,
            max: 1.0,
        };
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic(
                    N_TASKS,
                    UTILIZATION,
                    pattern.clone(),
                    (ri * 1_000 + rep) as u64,
                )
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        table.push_row(
            format!("{ratio:.1}"),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s, ideal continuous processor; total deadline misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_as_ratio_falls() {
        let table = run(&RunOptions::quick());
        let st = table.column("st-edf").unwrap();
        // Lower ratio → lower normalized energy (allow small noise).
        assert!(
            st.first().unwrap() < st.last().unwrap(),
            "st-edf at ratio 0.1 ({}) should beat ratio 1.0 ({})",
            st.first().unwrap(),
            st.last().unwrap()
        );
        assert!(table.notes[0].contains("misses: 0"));
    }
}
