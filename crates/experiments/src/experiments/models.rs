//! `models` — task models beyond hard-periodic.
//!
//! The same synthetic workloads under five task-model mixes: all-hard (the
//! control — must behave exactly like the rest of the suite), weakly-hard
//! ((m,k)-firm contracts with greedy skip reclamation), sporadic (seeded
//! inter-arrival stretches), frame (miss-driven boost floors under a
//! deliberately slow fixed-speed-capable lineup — here the governors keep
//! deadlines, so boosts stay rare), and everything mixed.
//!
//! Every run is audited by the model-aware referee: hard and sporadic
//! tasks must never miss, weakly-hard tasks must never violate their
//! (m,k) window, and the reported model counters must be consistent with
//! the job stream. A row reports the governor's normalized energy under
//! the mix plus the per-model activity columns (skips, sporadic jobs,
//! frame misses), so the CSV answers "what does each task model cost or
//! save under each governor".
//!
//! `la-edf` is excluded from the sporadic-bearing mixes: sporadic arrivals
//! are delay-only, the same safety class as release jitter, and laEDF's
//! lookahead requires strictly periodic arrivals (DESIGN.md §10). The
//! exclusion is derived from the governor capability table, not a name
//! list (see [`crate::runner::governor_caps`]).

use stadvs_power::Processor;
use stadvs_sim::{audit_outcome, AuditIssue, FaultPlan, SimConfig, SimOutcome, Simulator, TaskSet};
use stadvs_workload::{DemandPattern, ExecutionModel, ModelMix, TaskSetSpec};

use crate::experiments::RunOptions;
use crate::runner::{capable_lineup, make_governor, required_caps, STANDARD_LINEUP};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 6;
/// Worst-case utilization of every set (head-room keeps every mix
/// feasible for the whole lineup).
pub const UTILIZATION: f64 = 0.6;

/// The model mixes compared (label, recipe), in row-group order.
///
/// # Panics
///
/// Panics if a mix constant is out of range (they are literals).
pub fn mixes() -> Vec<(&'static str, ModelMix)> {
    let mk = |r: Result<ModelMix, stadvs_workload::WorkloadError>| r.expect("mix literals valid");
    vec![
        ("all-hard", ModelMix::new()),
        ("weakly-hard", mk(ModelMix::new().with_weakly_hard(2, 1, 3))),
        ("sporadic", mk(ModelMix::new().with_sporadic(2, 0.5))),
        ("frame", mk(ModelMix::new().with_frame(2, 0.5))),
        (
            "mixed",
            mk(
                mk(mk(ModelMix::new().with_weakly_hard(2, 1, 3)).with_sporadic(2, 0.5))
                    .with_frame(1, 0.5),
            ),
        ),
    ]
}

/// The per-model statistics columns, after the energy column.
const STAT_COLUMNS: &[&str] = &[
    "hard_misses",
    "mk_violations",
    "skips",
    "sporadic_jobs",
    "frame_misses",
    "max_streak",
];

fn simulate(tasks: &TaskSet, exec: &ExecutionModel, name: &str, horizon: f64) -> SimOutcome {
    let mut governor = make_governor(name).expect("lineup names resolve");
    let config = SimConfig::new(horizon).expect("experiment horizon is valid");
    let sim = Simulator::new(tasks.clone(), Processor::ideal_continuous(), config)
        .expect("generated sets are valid");
    sim.run(governor.as_mut(), exec)
        .expect("simulation succeeds on valid input")
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut columns = vec!["normalized".to_string()];
    columns.extend(STAT_COLUMNS.iter().map(|s| s.to_string()));
    let mut table = Table::new(
        "models — task models beyond hard-periodic (6 tasks, U = 0.60)",
        "mix/governor",
        columns,
    );
    for (label, mix) in mixes() {
        // The same workload seeds under every mix, so a column reads as
        // "this exact workload set, re-modelled".
        let cases: Vec<(TaskSet, ExecutionModel)> = (0..opts.replications)
            .map(|rep| {
                let tasks = TaskSetSpec::new(N_TASKS, UTILIZATION)
                    .expect("experiment parameters are valid")
                    .with_model_mix(mix)
                    .expect("mix fits the task count")
                    .with_seed(rep as u64)
                    .generate()
                    .expect("generation succeeds for valid parameters");
                let exec = ExecutionModel::new(DemandPattern::Uniform { min: 0.2, max: 1.0 })
                    .expect("experiment pattern is valid")
                    .with_seed(rep as u64 ^ 0x5EED_5EED_5EED_5EED);
                (tasks, exec)
            })
            .collect();
        let lineup = capable_lineup(STANDARD_LINEUP, required_caps(&cases[0].0));
        let baseline: Vec<f64> = cases
            .iter()
            .map(|(tasks, exec)| simulate(tasks, exec, "no-dvs", opts.horizon).total_energy())
            .collect();
        let mut audit_issues = 0usize;
        for name in &lineup {
            let mut normalized_sum = 0.0;
            let mut hard_misses = 0u64;
            let mut mk_violations = 0u64;
            let mut skips = 0u64;
            let mut sporadic_jobs = 0u64;
            let mut frame_misses = 0u64;
            let mut max_streak = 0u64;
            for ((tasks, exec), base) in cases.iter().zip(&baseline) {
                let out = simulate(tasks, exec, name, opts.horizon);
                let audit = audit_outcome(&out, tasks, &FaultPlan::NONE);
                audit_issues += audit.issues.len();
                mk_violations += audit
                    .issues
                    .iter()
                    .filter(|i| matches!(i, AuditIssue::MkViolation { .. }))
                    .count() as u64; // xtask:allow(as-cast): small count
                normalized_sum += out.total_energy() / base;
                hard_misses += out
                    .jobs
                    .iter()
                    .filter(|j| j.missed(out.horizon) && tasks.task(j.id.task).is_hard())
                    .count() as u64; // xtask:allow(as-cast): small count
                skips += out.models.skips;
                sporadic_jobs += out.models.sporadic_jobs;
                frame_misses += out.models.frame_misses;
                max_streak = max_streak.max(out.models.max_frame_miss_streak);
            }
            table.push_row(
                format!("{label}/{name}"),
                vec![
                    normalized_sum / cases.len() as f64, // xtask:allow(as-cast): mean over reps
                    hard_misses as f64,                  // xtask:allow(as-cast): exact small count
                    mk_violations as f64,                // xtask:allow(as-cast): exact small count
                    skips as f64,                        // xtask:allow(as-cast): exact small count
                    sporadic_jobs as f64,                // xtask:allow(as-cast): exact small count
                    frame_misses as f64,                 // xtask:allow(as-cast): exact small count
                    max_streak as f64,                   // xtask:allow(as-cast): exact small count
                ],
            );
        }
        table.note(format!(
            "{label}: lineup {} of {} governors, audit issues {audit_issues}",
            lineup.len(),
            STANDARD_LINEUP.len()
        ));
    }
    table.note(format!(
        "{} replications per mix, horizon {} s, ideal continuous processor, greedy (m,k) \
         skip policy; normalized to no-dvs under the same mix; la-edf is excluded from \
         sporadic-bearing mixes (capability table, DESIGN.md §10/§14)",
        opts.replications, opts.horizon
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_valid_and_distinct() {
        let mixes = mixes();
        assert_eq!(mixes.len(), 5);
        assert!(mixes[0].1.is_all_hard());
        for (label, mix) in &mixes[1..] {
            assert!(!mix.is_all_hard(), "{label}");
            assert!(mix.total() <= N_TASKS, "{label}");
        }
    }

    #[test]
    fn model_guarantees_hold_across_the_family() {
        let table = run(&RunOptions::quick());
        // Every (mix, governor) row: no hard miss, no (m,k) violation —
        // and the audit saw no issue of any kind.
        for (key, _) in &table.rows {
            assert_eq!(table.value(key, "hard_misses"), Some(0.0), "{key}");
            assert_eq!(table.value(key, "mk_violations"), Some(0.0), "{key}");
        }
        for (i, (label, _)) in mixes().into_iter().enumerate() {
            assert!(
                table.notes[i].contains("audit issues 0"),
                "{label}: {}",
                table.notes[i]
            );
        }
        // The all-hard control is quiet on every model counter.
        for (key, _) in table
            .rows
            .iter()
            .filter(|(k, _)| k.starts_with("all-hard/"))
        {
            for col in &["skips", "sporadic_jobs", "frame_misses", "max_streak"] {
                assert_eq!(table.value(key, col), Some(0.0), "{key}/{col}");
            }
        }
        // Weakly-hard mixes actually skip under the greedy policy, and
        // st-edf keeps a real energy advantage over no-dvs under skips.
        assert!(table.value("weakly-hard/st-edf", "skips").unwrap() > 0.0);
        assert!(table.value("weakly-hard/st-edf", "normalized").unwrap() < 0.95);
        // Sporadic mixes release sporadic jobs and exclude la-edf.
        assert!(table.value("sporadic/st-edf", "sporadic_jobs").unwrap() > 0.0);
        assert!(table.value("sporadic/la-edf", "normalized").is_none());
        assert!(table.value("mixed/la-edf", "normalized").is_none());
        assert!(table.value("all-hard/la-edf", "normalized").is_some());
        // no-dvs normalizes to exactly 1 in every mix.
        for (key, _) in table.rows.iter().filter(|(k, _)| k.ends_with("/no-dvs")) {
            let v = table.value(key, "normalized").unwrap();
            assert!((v - 1.0).abs() < 1e-12, "{key}: {v}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&RunOptions::quick());
        let b = run(&RunOptions::quick());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.notes, b.notes);
    }
}
