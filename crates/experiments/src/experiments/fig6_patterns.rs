//! `fig6_patterns` — robustness across execution-demand patterns.
//!
//! The "dynamic workload" stress test: the same task sets under six demand
//! patterns, from constant to bursty two-phase. Expected shape: history-
//! free slack analysis is pattern-insensitive (it reacts to measured slack
//! only), so `st-edf` keeps a similar advantage under every pattern.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;

/// The demand patterns compared (label, pattern).
pub fn patterns() -> Vec<(&'static str, DemandPattern)> {
    vec![
        ("constant-0.5", DemandPattern::Constant { ratio: 0.5 }),
        (
            "uniform-0.1-1.0",
            DemandPattern::Uniform { min: 0.1, max: 1.0 },
        ),
        (
            "normal-0.5",
            DemandPattern::Normal {
                mean: 0.5,
                std_dev: 0.2,
                floor: 0.05,
            },
        ),
        (
            "bimodal-0.25/0.95",
            DemandPattern::Bimodal {
                low: 0.25,
                high: 0.95,
                high_probability: 0.3,
            },
        ),
        (
            "sinusoidal",
            DemandPattern::Sinusoidal {
                mean: 0.5,
                amplitude: 0.4,
                period_jobs: 40,
            },
        ),
        (
            "bursty",
            DemandPattern::Bursty {
                low: 0.2,
                high: 0.9,
                burst_jobs: 20,
                duty: 0.4,
            },
        ),
    ]
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let comparison = Comparison::new(Processor::ideal_continuous(), opts.horizon);
    let mut table = Table::new(
        "fig6_patterns — normalized energy across execution-demand patterns (8 tasks, U = 0.7)",
        "pattern",
        STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (pi, (label, pattern)) in patterns().into_iter().enumerate() {
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic(
                    N_TASKS,
                    UTILIZATION,
                    pattern.clone(),
                    (pi * 1_000 + rep) as u64,
                )
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        table.push_row(label, agg.iter().map(|a| a.mean_normalized).collect());
    }
    table.note(format!(
        "{} replications per pattern, horizon {} s, ideal continuous processor; total deadline misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stedf_saves_energy_under_every_pattern() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), patterns().len());
        for v in table.column("st-edf").unwrap() {
            assert!(v < 0.95, "st-edf normalized energy {v} too close to 1");
        }
        assert!(table.notes[0].contains("misses: 0"));
    }
}
