//! `fig4_levels` — normalized energy vs number of discrete frequency
//! levels.
//!
//! Real DVS processors offer a handful of operating points; every requested
//! speed is quantized *up*. This experiment sweeps a synthetic n-level
//! processor (uniform speeds, affine voltage, CMOS power) from 2 to 32
//! levels plus the continuous asymptote. Expected shape: a few levels
//! already capture most of the benefit; the curves approach the continuous
//! value from above as levels increase.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;
/// Execution-demand pattern.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.5, max: 1.0 };
/// Level-count sweep points (`None` = continuous).
pub const LEVELS: [Option<usize>; 8] = [
    Some(2),
    Some(3),
    Some(4),
    Some(6),
    Some(8),
    Some(16),
    Some(32),
    None,
];
/// Governors compared (a focused subset keeps the figure readable).
pub const LINEUP: [&str; 5] = ["no-dvs", "static-edf", "cc-edf", "dra", "st-edf"];

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "fig4_levels — normalized energy vs discrete frequency levels (U = 0.7, BCET/WCET = 0.5)",
        "levels",
        LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (li, levels) in LEVELS.iter().enumerate() {
        let processor = match levels {
            Some(n) => {
                // Match the continuous reference's power curve: a CMOS
                // model with affine voltage, normalized to 1 W at full
                // speed.
                Processor::uniform_discrete(*n).expect("level count is positive")
            }
            None => Processor::ideal_continuous(),
        };
        let comparison = Comparison::new(processor, opts.horizon).with_governors(LINEUP);
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic(N_TASKS, UTILIZATION, PATTERN, (li * 1_000 + rep) as u64)
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        let key = match levels {
            Some(n) => n.to_string(),
            None => "continuous".to_string(),
        };
        table.push_row(key, agg.iter().map(|a| a.mean_normalized).collect());
    }
    table.note(format!(
        "{} replications per point, horizon {} s; discrete points use CMOS power with affine \
         voltage (0.8–1.8 V), the continuous reference the ideal cubic model; total deadline \
         misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_levels_help_and_converge() {
        let table = run(&RunOptions::quick());
        let st = table.column("st-edf").unwrap();
        let two = st[0];
        let thirty_two = st[LEVELS.len() - 2];
        assert!(
            thirty_two < two,
            "32 levels ({thirty_two}) should beat 2 levels ({two})"
        );
        assert!(table.notes[0].contains("misses: 0"));
    }
}
