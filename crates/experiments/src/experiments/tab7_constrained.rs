//! `tab7_constrained` — constrained deadlines (`D < T`).
//!
//! Shrinking relative deadlines raises the minimum feasible static speed
//! from `U` to the demand-bound intensity peak and shrinks every slack
//! window. Expected shape: all energies rise as deadlines tighten;
//! `static-edf` (rebased on the dbf peak) degrades fastest; the
//! slack-analysis governor keeps a lead because its claims currency — the
//! canonical stretch solved from the dbf — remains exact. ccEDF and laEDF
//! are excluded: their published feasibility arguments assume implicit
//! deadlines.

use stadvs_power::Processor;
use stadvs_sim::{Task, TaskSet};
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 6;
/// Worst-case utilization before deadline shrinking.
pub const UTILIZATION: f64 = 0.5;
/// Execution-demand pattern.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.3, max: 1.0 };
/// Deadline-to-period fractions swept (1.0 = implicit).
pub const FRACTIONS: [f64; 5] = [1.0, 0.9, 0.8, 0.7, 0.6];
/// Governors whose guarantees extend to constrained deadlines.
pub const LINEUP: [&str; 6] = [
    "no-dvs",
    "static-edf",
    "lpps-edf",
    "dra",
    "feedback-edf",
    "st-edf",
];

fn constrain(tasks: &TaskSet, fraction: f64) -> TaskSet {
    TaskSet::new(
        tasks
            .iter()
            .map(|(_, t)| {
                let deadline = (fraction * t.period()).max(t.wcet());
                Task::with_deadline(t.wcet(), t.period(), deadline)
                    .expect("fraction keeps wcet <= deadline <= period")
            })
            .collect(),
    )
    .expect("non-empty")
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let comparison =
        Comparison::new(Processor::ideal_continuous(), opts.horizon).with_governors(LINEUP);
    let mut table = Table::new(
        "tab7_constrained — normalized energy vs deadline/period fraction (6 tasks, U = 0.5)",
        "D/T",
        LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (fi, &fraction) in FRACTIONS.iter().enumerate() {
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                let base = WorkloadCase::synthetic(
                    N_TASKS,
                    UTILIZATION,
                    PATTERN,
                    (fi * 1_000 + rep) as u64,
                );
                WorkloadCase {
                    tasks: constrain(&base.tasks, fraction),
                    exec: base.exec,
                }
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        table.push_row(
            format!("{fraction:.1}"),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s, ideal continuous processor; ccEDF/laEDF \
         excluded (implicit-deadline algorithms); total deadline misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightening_deadlines_costs_energy_and_stays_safe() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), FRACTIONS.len());
        let st = table.column("st-edf").unwrap();
        // Implicit deadlines are the cheapest row.
        assert!(
            st[0] <= *st.last().unwrap() + 1e-9,
            "tighter deadlines should not be cheaper: {st:?}"
        );
        // st-edf beats the rebased static optimum at every fraction.
        let static_col = table.column("static-edf").unwrap();
        for (s, t) in st.iter().zip(&static_col) {
            assert!(s <= t, "st-edf {s} should beat static {t}");
        }
        assert!(table.notes[0].contains("misses: 0"));
    }
}
