//! `faults` — graceful degradation under injected faults.
//!
//! The same synthetic workloads under the named fault regimes of
//! [`FaultPlanSpec`]: WCET-overrun storms, a degraded platform (dropped
//! downward switches plus a coarsened level set), noisy release timing,
//! and everything combined. Normalized energy is measured against `no-dvs`
//! *under the same plan*, so a row answers "how much of the DVS advantage
//! survives this fault regime", not "how expensive is the regime".
//!
//! Expected shape: the deadline-safe channels (jitter, drops, floor) cost
//! energy but never deadlines; overrun regimes may miss deadlines, but
//! only on fault-contaminated jobs — the notes pin both halves of that
//! guarantee, and an unattributed miss fails this experiment's test.
//!
//! `la-edf` is excluded (rendered `-`) under the jittered regimes: the
//! differential harness showed its deferral argument requires strictly
//! periodic arrivals — alone among the lineup it misses deadlines under
//! delayed releases (see DESIGN.md §10), and those misses would be
//! algorithm-attributable, not injection-attributable.

use stadvs_power::Processor;
use stadvs_workload::{DemandPattern, FaultPlanSpec};

use crate::experiments::RunOptions;
use crate::runner::{jitter_safe_lineup, Comparison, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 6;
/// Worst-case utilization of every set (head-room keeps the deadline-safe
/// regimes feasible even on the coarsened level set).
pub const UTILIZATION: f64 = 0.65;

/// The fault regimes compared (label, recipe), in row order.
pub fn regimes() -> Vec<(&'static str, FaultPlanSpec)> {
    vec![
        ("none", FaultPlanSpec::none()),
        ("overrun-storm", FaultPlanSpec::overrun_storm(0xFA01)),
        (
            "degraded-platform",
            FaultPlanSpec::degraded_platform(0xFA02),
        ),
        ("noisy-releases", FaultPlanSpec::noisy_releases(0xFA03)),
        ("combined", FaultPlanSpec::combined(0xFA04)),
    ]
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "faults — normalized energy under injected faults (6 tasks, U = 0.65)",
        "regime",
        STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    // The same workload seeds under every regime, so a column reads as
    // "this exact workload set, progressively degraded".
    let cases: Vec<WorkloadCase> = (0..opts.replications)
        .map(|rep| {
            WorkloadCase::synthetic(
                N_TASKS,
                UTILIZATION,
                DemandPattern::Uniform { min: 0.2, max: 1.0 },
                rep as u64,
            )
        })
        .collect();
    for (label, spec) in regimes() {
        let plan = spec.build().expect("named regimes are valid");
        // laEDF's safety argument does not extend to jittered releases
        // (module docs); the registry's capability table keeps it off
        // regimes without periodic arrivals.
        let lineup = jitter_safe_lineup(STANDARD_LINEUP, &plan);
        let comparison = Comparison::new(Processor::ideal_continuous(), opts.horizon)
            .with_governors(lineup.iter().copied())
            .with_fault_plan(plan);
        let agg = comparison.run_cases(&cases);
        let attributed: usize = agg.iter().map(|a| a.total_fault_misses).sum();
        let total: usize = agg.iter().map(|a| a.total_misses).sum();
        let overruns: u64 = agg.iter().map(|a| a.total_overruns).sum();
        let worst_recovery = agg
            .iter()
            .map(|a| a.mean_recovery_latency)
            .fold(0.0, f64::max);
        let values: Vec<f64> = STANDARD_LINEUP
            .iter()
            .map(|name| {
                agg.iter()
                    .find(|a| &a.name == name)
                    .map_or(f64::NAN, |a| a.mean_normalized)
            })
            .collect();
        table.push_row(label, values);
        table.note(format!(
            "{label}: overruns {overruns}, attributed misses {attributed}, \
             unattributed misses {}, worst mean recovery {worst_recovery:.4} s",
            total - attributed
        ));
    }
    table.note(format!(
        "{} replications per regime, horizon {} s, ideal continuous processor; \
         every simulation (including the no-dvs baseline) runs under the row's fault plan; \
         la-edf is excluded (-) under jittered regimes (DESIGN.md §10)",
        opts.replications, opts.horizon
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degradation_is_attributed_and_bounded() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), regimes().len());
        // Every miss in every regime must be fault-attributed: the per-
        // regime notes all report zero unattributed misses.
        for (i, (label, _)) in regimes().into_iter().enumerate() {
            assert!(
                table.notes[i].contains("unattributed misses 0"),
                "{label}: {}",
                table.notes[i]
            );
        }
        // Fault-free row: no fault activity at all, and st-edf keeps its
        // energy advantage.
        assert!(table.notes[0].contains("overruns 0"));
        assert!(table.notes[0].contains("attributed misses 0"));
        assert!(table.value("none", "st-edf").unwrap() < 0.95);
        // The deadline-safe regimes (no overrun channel) must not miss at
        // all — their notes report zero attributed misses too.
        for i in [2, 3] {
            assert!(
                table.notes[i].contains("attributed misses 0"),
                "{}",
                table.notes[i]
            );
        }
        // The degraded platform erodes (but need not erase) the advantage:
        // speeds only ever go up, so energy can only rise.
        let none = table.value("none", "st-edf").unwrap();
        let degraded = table.value("degraded-platform", "st-edf").unwrap();
        assert!(
            degraded >= none - 1e-9,
            "degraded {degraded} < fault-free {none}"
        );
        // la-edf runs on periodic-arrival regimes only.
        assert!(!table.value("none", "la-edf").unwrap().is_nan());
        assert!(table.value("noisy-releases", "la-edf").unwrap().is_nan());
        assert!(table.value("combined", "la-edf").unwrap().is_nan());
    }

    #[test]
    fn runs_are_deterministic() {
        // Compare the rendered artifact, not the Table: the la-edf NaN
        // placeholders are (correctly) not self-equal.
        let a = run(&RunOptions::quick());
        let b = run(&RunOptions::quick());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.notes, b.notes);
    }
}
