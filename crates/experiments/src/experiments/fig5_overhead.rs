//! `fig5_overhead` — normalized energy vs speed-switch overhead.
//!
//! Speed transitions cost both latency (no instructions execute) and
//! energy (the regulator's capacitive swing). The sweep spans zero
//! overhead to a pessimistic 1 ms / switch. Expected shape: oblivious
//! governors lose their advantage (and can even miss deadlines) as
//! overhead grows, while the overhead-aware `st-edf-oa` degrades
//! gracefully and always stays safe.

use stadvs_power::{Processor, TransitionEnergy, TransitionOverhead, VoltageMap};
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;
/// Execution-demand pattern.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.5, max: 1.0 };
/// Switch-latency sweep points, in seconds.
pub const LATENCIES: [f64; 6] = [0.0, 50.0e-6, 100.0e-6, 200.0e-6, 500.0e-6, 1.0e-3];
/// Governors compared.
pub const LINEUP: [&str; 5] = ["no-dvs", "cc-edf", "dra", "st-edf", "st-edf-oa"];

/// Builds the platform for one latency point.
pub fn platform(latency: f64) -> Processor {
    let overhead = if latency <= 0.0 {
        TransitionOverhead::free()
    } else {
        TransitionOverhead::new(
            latency,
            TransitionEnergy::CapacitiveSwing {
                eta: 0.9,
                c_dd: 5.0e-6,
                voltage: VoltageMap::affine(0.8, 1.8).expect("valid voltages"),
            },
        )
        .expect("valid overhead parameters")
    };
    Processor::ideal_continuous().with_overhead(overhead)
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "fig5_overhead — normalized energy vs speed-switch latency (U = 0.7, BCET/WCET = 0.5)",
        "latency",
        LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut miss_report = Vec::new();
    for (li, &latency) in LATENCIES.iter().enumerate() {
        let comparison = Comparison::new(platform(latency), opts.horizon).with_governors(LINEUP);
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic(N_TASKS, UTILIZATION, PATTERN, (li * 1_000 + rep) as u64)
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        for a in &agg {
            if a.total_misses > 0 {
                miss_report.push(format!(
                    "{} @ {:.0} µs: {} misses",
                    a.name,
                    latency * 1e6,
                    a.total_misses
                ));
            }
        }
        table.push_row(
            format!("{:.0}us", latency * 1e6),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s; transition energy = capacitive swing \
         (η = 0.9, C_DD = 5 µF, 0.8–1.8 V)",
        opts.replications, opts.horizon
    ));
    if miss_report.is_empty() {
        table.note("deadline misses: none (all governors safe at every latency)".to_string());
    } else {
        table.note(format!(
            "deadline misses by overhead-oblivious governors: {}",
            miss_report.join("; ")
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_aware_stays_safe_and_competitive() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), LATENCIES.len());
        let oa = table.column("st-edf-oa").unwrap();
        // Saves energy at moderate latency; may honestly degenerate to
        // full speed (normalized 1.0) at extreme latency, but never does
        // worse than no-DVS.
        assert!(
            oa[1] < 1.0,
            "st-edf-oa at 50 µs should save energy, got {}",
            oa[1]
        );
        assert!(
            *oa.last().unwrap() <= 1.0 + 1e-9,
            "st-edf-oa at 1 ms must not lose to no-dvs, got {}",
            oa.last().unwrap()
        );
        // Graceful degradation: energy is non-decreasing in latency.
        for w in oa.windows(2) {
            assert!(w[1] >= w[0] - 0.02, "non-monotone degradation {:?}", oa);
        }
        // The aware variant must never be the cause of a miss.
        for note in &table.notes {
            assert!(
                !note.contains("st-edf-oa @"),
                "overhead-aware variant missed: {note}"
            );
        }
    }
}
