//! `tab5_ablation` — which slack source earns the savings?
//!
//! The stEDF design-choice ablation called out in DESIGN.md: the full
//! algorithm against each single-source variant (`[r]` canonical
//! reclaiming only, `[a]` arrival stretch only, `[d]` demand analysis
//! only) across BCET/WCET ratios, with `dra` as the external reference.
//! Expected shape: the demand analysis carries most of the benefit; the
//! arrival stretch adds a little at low contention; banking alone (`[r]`)
//! ≈ `dra`; the full combination is at least as good as every variant.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;
/// BCET/WCET sweep points.
pub const RATIOS: [f64; 4] = [0.2, 0.5, 0.8, 1.0];
/// The ablation lineup.
pub const LINEUP: [&str; 5] = ["st-edf", "st-edf[d]", "st-edf[a]", "st-edf[r]", "dra"];

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "tab5_ablation — stEDF slack-source ablation, normalized energy (8 tasks, U = 0.7)",
        "BCET/WCET",
        LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (ri, &ratio) in RATIOS.iter().enumerate() {
        let pattern = DemandPattern::Uniform {
            min: ratio,
            max: 1.0,
        };
        let comparison =
            Comparison::new(Processor::ideal_continuous(), opts.horizon).with_governors(LINEUP);
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic(
                    N_TASKS,
                    UTILIZATION,
                    pattern.clone(),
                    (ri * 1_000 + rep) as u64,
                )
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        table.push_row(
            format!("{ratio:.1}"),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s, ideal continuous processor; total deadline misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_algorithm_dominates_its_ablations() {
        let table = run(&RunOptions::quick());
        let full = table.column("st-edf").unwrap();
        for variant in ["st-edf[d]", "st-edf[a]", "st-edf[r]"] {
            let ablated = table.column(variant).unwrap();
            for (f, a) in full.iter().zip(&ablated) {
                assert!(
                    *f <= *a + 0.02,
                    "full ({f}) should not lose to {variant} ({a})"
                );
            }
        }
        assert!(table.notes[0].contains("misses: 0"));
    }
}
