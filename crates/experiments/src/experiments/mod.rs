//! One module per reproduced figure/table, plus the experiment registry.

pub mod budget;
pub mod faults;
pub mod fig1_util;
pub mod fig2_bcet;
pub mod fig3_ntasks;
pub mod fig4_levels;
pub mod fig5_overhead;
pub mod fig6_patterns;
pub mod fig7_leakage;
pub mod fig8_cores;
pub mod models;
pub mod tab1_refsets;
pub mod tab2_bound;
pub mod tab3_misses;
pub mod tab4_switches;
pub mod tab5_ablation;
pub mod tab6_pace;
pub mod tab7_constrained;

use serde::{Deserialize, Serialize};

use crate::table::Table;

/// Shared experiment knobs (replication count and simulated horizon).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Random task sets per sweep point.
    pub replications: usize,
    /// Simulated horizon per run, in seconds (individual experiments may
    /// shorten it, e.g. the YDS-bound table).
    pub horizon: f64,
    /// Horizon for fixed reference task sets, in multiples of the set's
    /// slowest period (their absolute time scales differ by 100×).
    pub ref_periods: f64,
}

impl RunOptions {
    /// The full-scale settings used to produce EXPERIMENTS.md.
    pub fn standard() -> RunOptions {
        RunOptions {
            replications: 20,
            horizon: 8.0,
            ref_periods: 25.0,
        }
    }

    /// Reduced settings for tests and smoke runs.
    pub fn quick() -> RunOptions {
        RunOptions {
            replications: 3,
            horizon: 2.0,
            ref_periods: 5.0,
        }
    }
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions::standard()
    }
}

/// A registered experiment: stable id, human title, and its runner.
pub struct Experiment {
    /// Stable id (matches the bench binary name).
    pub id: &'static str,
    /// Human-readable description.
    pub title: &'static str,
    /// Regenerates the experiment's table.
    pub run: fn(&RunOptions) -> Table,
}

/// Every reproduced figure and table, in report order.
pub fn all() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1_util",
            title: "Normalized energy vs worst-case utilization",
            run: fig1_util::run,
        },
        Experiment {
            id: "fig2_bcet",
            title: "Normalized energy vs BCET/WCET ratio",
            run: fig2_bcet::run,
        },
        Experiment {
            id: "fig3_ntasks",
            title: "Normalized energy vs task-set size",
            run: fig3_ntasks::run,
        },
        Experiment {
            id: "fig4_levels",
            title: "Normalized energy vs discrete frequency levels",
            run: fig4_levels::run,
        },
        Experiment {
            id: "fig5_overhead",
            title: "Normalized energy vs speed-switch overhead",
            run: fig5_overhead::run,
        },
        Experiment {
            id: "fig6_patterns",
            title: "Robustness across execution-demand patterns",
            run: fig6_patterns::run,
        },
        Experiment {
            id: "fig7_leakage",
            title: "Static (leakage) power and the critical-speed floor",
            run: fig7_leakage::run,
        },
        Experiment {
            id: "fig8_cores",
            title: "Normalized energy vs core count (partitioned EDF-DVS)",
            run: fig8_cores::run,
        },
        Experiment {
            id: "tab1_refsets",
            title: "Reference embedded task sets (CNC, INS, avionics)",
            run: tab1_refsets::run,
        },
        Experiment {
            id: "tab2_bound",
            title: "Gap to the YDS clairvoyant lower bound",
            run: tab2_bound::run,
        },
        Experiment {
            id: "tab3_misses",
            title: "Hard-real-time audit (deadline misses and trace issues)",
            run: tab3_misses::run,
        },
        Experiment {
            id: "tab4_switches",
            title: "Speed switches per job",
            run: tab4_switches::run,
        },
        Experiment {
            id: "tab5_ablation",
            title: "stEDF slack-source ablation",
            run: tab5_ablation::run,
        },
        Experiment {
            id: "tab6_pace",
            title: "Intra-job acceleration (PACE extension)",
            run: tab6_pace::run,
        },
        Experiment {
            id: "tab7_constrained",
            title: "Constrained deadlines (D < T)",
            run: tab7_constrained::run,
        },
        Experiment {
            id: "faults",
            title: "Graceful degradation under injected faults",
            run: faults::run,
        },
        Experiment {
            id: "models",
            title: "Task models beyond hard-periodic (weakly-hard, sporadic, frame)",
            run: models::run,
        },
        Experiment {
            id: "budget",
            title: "Shared platform power cap (kernel budget component)",
            run: budget::run,
        },
    ]
}

/// Finds an experiment by id.
pub fn by_id(id: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        let experiments = all();
        let mut ids: Vec<&str> = experiments.iter().map(|e| e.id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
        assert!(by_id("fig1_util").is_some());
        assert!(by_id("nope").is_none());
        assert!(by_id("faults").is_some());
        assert!(by_id("models").is_some());
        assert!(by_id("budget").is_some());
        assert_eq!(experiments.len(), 18);
    }

    #[test]
    fn options_presets() {
        assert_eq!(RunOptions::default(), RunOptions::standard());
        assert!(RunOptions::quick().replications < RunOptions::standard().replications);
    }
}
