//! `tab4_switches` — speed switches per job.
//!
//! Transition counts determine how exposed each algorithm is to switching
//! overhead. Expected shape: `no-dvs` never switches; `static-edf`
//! switches once; per-dispatch schemes (cc-edf, la-edf, dra, st-edf) pay
//! roughly one to two switches per job.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Execution-demand pattern.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.5, max: 1.0 };
/// Utilization points.
pub const UTILIZATIONS: [f64; 4] = [0.3, 0.5, 0.7, 0.9];

/// Runs the experiment. Values are mean speed switches per completed job.
pub fn run(opts: &RunOptions) -> Table {
    let comparison = Comparison::new(Processor::ideal_continuous(), opts.horizon);
    let mut table = Table::new(
        "tab4_switches — speed switches per job (8 tasks, BCET/WCET = 0.5)",
        "U",
        STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    for (ui, &u) in UTILIZATIONS.iter().enumerate() {
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| WorkloadCase::synthetic(N_TASKS, u, PATTERN, (ui * 1_000 + rep) as u64))
            .collect();
        let agg = comparison.run_cases(&cases);
        table.push_row(
            format!("{u:.1}"),
            agg.iter().map(|a| a.switches_per_job).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s, ideal continuous processor (every requested \
         speed is distinct, so this is the worst case for switch counts)",
        opts.replications, opts.horizon
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_count_ordering() {
        let table = run(&RunOptions::quick());
        for v in table.column("no-dvs").unwrap() {
            assert_eq!(v, 0.0);
        }
        for v in table.column("static-edf").unwrap() {
            assert!(v > 0.0 && v < 0.2, "static switches/job {v}");
        }
        for v in table.column("st-edf").unwrap() {
            assert!(v < 6.0, "st-edf switches/job {v} implausibly high");
        }
    }
}
