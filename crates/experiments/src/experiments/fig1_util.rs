//! `fig1_util` — normalized energy vs worst-case utilization.
//!
//! The headline figure of every DVS-EDF comparison: 8 synthetic tasks,
//! literature-default periods, uniform execution demand in `[0.5, 1]·WCET`,
//! worst-case utilization swept from 0.1 to 1.0. Expected shape: all
//! dynamic schemes beat `static-edf`; `lpps-edf` is weakest (rarely alone);
//! reclaiming (`dra`) and look-ahead (`la-edf`) trade places with load; the
//! slack-analysis `st-edf` tracks the lowest curve throughout.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Execution-demand pattern of this figure.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.5, max: 1.0 };
/// Utilization sweep points.
pub const UTILIZATIONS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let comparison = Comparison::new(Processor::ideal_continuous(), opts.horizon);
    let mut table = Table::new(
        "fig1_util — normalized energy vs worst-case utilization (8 tasks, uniform demand 0.5–1.0 WCET)",
        "U",
        STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (ui, &u) in UTILIZATIONS.iter().enumerate() {
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| WorkloadCase::synthetic(N_TASKS, u, PATTERN, (ui * 1_000 + rep) as u64))
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        table.push_row(
            format!("{u:.1}"),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s, ideal continuous processor; total deadline misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_expected_shape() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), UTILIZATIONS.len());
        // no-dvs is the normalization baseline.
        for v in table.column("no-dvs").unwrap() {
            assert!((v - 1.0).abs() < 1e-9);
        }
        // st-edf saves energy at every utilization and never misses.
        let st = table.column("st-edf").unwrap();
        let stat = table.column("static-edf").unwrap();
        for (s, t) in st.iter().zip(&stat) {
            assert!(*s <= *t + 1e-9, "st-edf {s} worse than static {t}");
            assert!(*s < 1.0);
        }
        assert!(table.notes[0].contains("misses: 0"));
    }
}
