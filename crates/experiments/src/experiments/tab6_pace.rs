//! `tab6_pace` — intra-job acceleration (the future-work extension).
//!
//! The paper's conclusion calls for "more aggressive slack reclaiming
//! strategies"; PACE-style intra-job acceleration is that extension: run
//! the early chunks of every job below the constant-speed plan and
//! accelerate through later chunks, so jobs that finish early never pay
//! for the fast tail. Expected shape: pacing wins most where demands
//! finish earliest (low BCET/WCET), converges to plain stEDF at worst-case
//! demand, and pays for itself with extra speed switches.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;
/// BCET/WCET sweep points.
pub const RATIOS: [f64; 4] = [0.1, 0.4, 0.7, 1.0];
/// Governors compared.
pub const LINEUP: [&str; 3] = ["static-edf", "st-edf", "st-edf-pace"];

/// Runs the experiment. Values: normalized energy; the switches/job of the
/// paced variant is reported in the notes.
pub fn run(opts: &RunOptions) -> Table {
    let comparison =
        Comparison::new(Processor::ideal_continuous(), opts.horizon).with_governors(LINEUP);
    let mut table = Table::new(
        "tab6_pace — intra-job acceleration, normalized energy (8 tasks, U = 0.7)",
        "BCET/WCET",
        LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    let mut switch_notes = Vec::new();
    for (ri, &ratio) in RATIOS.iter().enumerate() {
        let pattern = DemandPattern::Uniform {
            min: ratio,
            max: 1.0,
        };
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic(
                    N_TASKS,
                    UTILIZATION,
                    pattern.clone(),
                    (ri * 1_000 + rep) as u64,
                )
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        switch_notes.push(format!(
            "{ratio:.1}: {:.1} vs {:.1}",
            agg[1].switches_per_job, agg[2].switches_per_job
        ));
        table.push_row(
            format!("{ratio:.1}"),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s, ideal continuous processor, 8 PACE steps; \
         total deadline misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table.note(format!(
        "switches/job (st-edf vs st-edf-pace) by ratio: {}",
        switch_notes.join("; ")
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pacing_helps_at_low_ratios_and_is_neutral_at_worst_case() {
        let table = run(&RunOptions::quick());
        let plain = table.column("st-edf").unwrap();
        let paced = table.column("st-edf-pace").unwrap();
        // At the lowest ratio, pacing should win (or at least tie).
        assert!(
            paced[0] <= plain[0] + 0.01,
            "paced {} vs plain {} at ratio 0.1",
            paced[0],
            plain[0]
        );
        // At worst case both collapse to the same constant plan.
        let last = RATIOS.len() - 1;
        assert!(
            (paced[last] - plain[last]).abs() < 0.02,
            "paced {} vs plain {} at worst case",
            paced[last],
            plain[last]
        );
        assert!(table.notes[0].contains("misses: 0"));
    }
}
