//! `tab2_bound` — distance to the YDS clairvoyant lower bound.
//!
//! For each utilization, the percentage by which each governor's energy
//! exceeds the YDS optimal offline schedule of the *realized* workload —
//! the tightest possible reference. Expected shape: gaps grow with
//! utilization for every on-line scheme; `st-edf` keeps the smallest gap
//! among them; even the clairvoyant *static* oracle trails YDS because a
//! constant speed cannot follow the demand profile.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase, ORACLE, YDS_BOUND};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Execution-demand pattern.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.5, max: 1.0 };
/// Utilization points.
pub const UTILIZATIONS: [f64; 3] = [0.5, 0.7, 0.9];
/// On-line (and oracle) competitors whose gap is reported.
pub const LINEUP: [&str; 6] = ["static-edf", "cc-edf", "dra", "la-edf", "st-edf", ORACLE];

/// Runs the experiment. Values are percentages above the YDS bound.
pub fn run(opts: &RunOptions) -> Table {
    // YDS is O(n²·log n) per critical interval: keep the horizon modest.
    let horizon = opts.horizon.min(2.0);
    let mut table = Table::new(
        "tab2_bound — energy above the YDS clairvoyant optimum, in percent (8 tasks, BCET/WCET = 0.5)",
        "U",
        LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut lineup_with_bound: Vec<&str> = LINEUP.to_vec();
    lineup_with_bound.push(YDS_BOUND);

    for (ui, &u) in UTILIZATIONS.iter().enumerate() {
        let comparison = Comparison::new(Processor::ideal_continuous(), horizon)
            .with_governors(lineup_with_bound.iter().copied());
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| WorkloadCase::synthetic(N_TASKS, u, PATTERN, (ui * 1_000 + rep) as u64))
            .collect();
        let raw = comparison.run_cases_raw(&cases);
        // Per-case gap, then mean: gap = (E_gov − E_yds) / E_yds · 100.
        let bound_idx = lineup_with_bound.len() - 1;
        let gaps: Vec<f64> = (0..LINEUP.len())
            .map(|gi| {
                raw.iter()
                    .map(|case| {
                        let yds = case[bound_idx].energy;
                        (case[gi].energy - yds) / yds * 100.0
                    })
                    .sum::<f64>()
                    / raw.len() as f64
            })
            .collect();
        table.push_row(format!("{u:.1}"), gaps);
    }
    table.note(format!(
        "{} replications per point, horizon {horizon} s (YDS is superquadratic), ideal continuous \
         processor; YDS energy computed on jobs due within the horizon",
        opts.replications
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_gap_is_nonnegative_and_stedf_beats_static() {
        let table = run(&RunOptions::quick());
        for (_, values) in &table.rows {
            for v in values {
                assert!(*v > -1e-6, "negative gap {v}: YDS is not a lower bound?");
            }
        }
        let st = table.column("st-edf").unwrap();
        let stat = table.column("static-edf").unwrap();
        for (s, t) in st.iter().zip(&stat) {
            assert!(s <= t, "st-edf gap {s}% should not exceed static {t}%");
        }
    }
}
