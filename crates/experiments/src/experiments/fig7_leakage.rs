//! `fig7_leakage` — static (leakage) power and the critical speed.
//!
//! The paper's future-work direction (and its successors' main topic):
//! with non-negligible leakage, "as slow as possible" stops being optimal —
//! below the *critical speed* a job takes longer and leaks more than the
//! voltage drop saves. The sweep raises static power from 0 to 30 % of the
//! full-speed dynamic power. Expected shape: plain `st-edf` keeps slowing
//! into the inefficient region and its advantage erodes; the
//! critical-speed-floored `st-edf-cs` tracks the best achievable curve.

use stadvs_power::{PowerKind, PowerModel, Processor};
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase};
use crate::table::Table;

/// Tasks per synthetic set.
pub const N_TASKS: usize = 8;
/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;
/// Execution-demand pattern (light demands make over-slowing tempting).
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.2, max: 1.0 };
/// On-power (leakage) sweep, as a fraction of full-speed dynamic power.
pub const LEAKAGE: [f64; 6] = [0.0, 0.02, 0.05, 0.1, 0.2, 0.3];
/// Governors compared.
pub const LINEUP: [&str; 4] = ["no-dvs", "static-edf", "st-edf", "st-edf-cs"];

/// The ideal continuous platform with the given on-power (leakage drawn
/// while executing; idle is a free deep-sleep state — the setting where
/// over-slowing genuinely wastes energy).
pub fn platform(on_power: f64) -> Processor {
    let model = PowerModel::new(
        PowerKind::Sleepable {
            coefficient: 1.0,
            exponent: 3.0,
            on_power,
        },
        0.0,
        0.0,
    )
    .expect("valid on-power");
    Processor::ideal_continuous().with_power_model(model)
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "fig7_leakage — normalized energy vs static power (8 tasks, U = 0.7, BCET/WCET = 0.2)",
        "P_static/P_max",
        LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (li, &leak) in LEAKAGE.iter().enumerate() {
        let processor = platform(leak);
        let comparison = Comparison::new(processor, opts.horizon).with_governors(LINEUP);
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| {
                WorkloadCase::synthetic(N_TASKS, UTILIZATION, PATTERN, (li * 1_000 + rep) as u64)
            })
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        table.push_row(
            format!("{leak:.2}"),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    let critical = platform(LEAKAGE[LEAKAGE.len() - 1])
        .power_model()
        .critical_speed();
    table.note(format!(
        "{} replications per point, horizon {} s; leakage is drawn only while executing \
         (idle = deep sleep), so over-slowing genuinely wastes energy; critical speed at \
         the highest leakage: {:.2}; total deadline misses: {}",
        opts.replications,
        opts.horizon,
        critical.ratio(),
        misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_floor_wins_under_heavy_leakage() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), LEAKAGE.len());
        let plain = table.column("st-edf").unwrap();
        let floored = table.column("st-edf-cs").unwrap();
        // With zero leakage the floor is inactive: identical results.
        assert!((plain[0] - floored[0]).abs() < 1e-9);
        // At the heaviest leakage, flooring must not lose, and should win.
        let last = LEAKAGE.len() - 1;
        assert!(
            floored[last] <= plain[last] + 1e-9,
            "floored {} vs plain {}",
            floored[last],
            plain[last]
        );
        assert!(table.notes[0].contains("misses: 0"));
    }
}
