//! `tab1_refsets` — the reference embedded task sets.
//!
//! The CNC machine controller, the inertial navigation system, and the
//! generic avionics platform, each under uniform demand in `[0.5, 1]·WCET`,
//! on the ideal continuous processor and on the XScale-class 5-level chip
//! (which has a real 20 µs switch latency). Expected shape: per-set savings
//! track the set's static slack (CNC at U ≈ 0.5 saves the most) plus the
//! dynamic slack from early completions; the discrete chip gives up a few
//! points to quantization, and overhead-*oblivious* governors can shave a
//! handful of deadlines there — which the misses note reports honestly and
//! the overhead-aware `st-edf-oa` avoids by construction.

use stadvs_power::Processor;
use stadvs_workload::{reference, DemandPattern};

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Execution-demand pattern.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.5, max: 1.0 };

/// The lineup: every standard governor plus the overhead-aware variant.
pub fn lineup() -> Vec<&'static str> {
    let mut names: Vec<&str> = STANDARD_LINEUP.to_vec();
    names.push("st-edf-oa");
    names
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let names = lineup();
    let mut table = Table::new(
        "tab1_refsets — normalized energy on reference embedded task sets (uniform demand 0.5–1.0 WCET)",
        "task set / platform",
        names.iter().map(|s| s.to_string()).collect(),
    );
    let mut miss_report = Vec::new();
    for (name, tasks) in reference::all() {
        // Horizon: enough periods of the slowest task to reach steady
        // state, independent of the set's absolute time scale.
        let horizon = opts.ref_periods * tasks.max_period();
        for (platform_name, processor) in [
            ("continuous", Processor::ideal_continuous()),
            ("xscale", Processor::xscale_class()),
        ] {
            let comparison =
                Comparison::new(processor, horizon).with_governors(names.iter().copied());
            let cases: Vec<WorkloadCase> = (0..opts.replications)
                .map(|rep| WorkloadCase::fixed(tasks.clone(), PATTERN, rep as u64))
                .collect();
            let agg = comparison.run_cases(&cases);
            for a in &agg {
                if a.total_misses > 0 {
                    miss_report.push(format!(
                        "{} on {name} ({platform_name}): {}",
                        a.name, a.total_misses
                    ));
                }
            }
            table.push_row(
                format!("{name} ({platform_name})"),
                agg.iter().map(|a| a.mean_normalized).collect(),
            );
        }
    }
    table.note(format!(
        "{} demand seeds per set, horizon = {} slowest periods; U(cnc) ≈ 0.53, U(ins) ≈ 0.74, \
         U(avionics) ≈ 0.90; the xscale platform has a real 20 µs switch latency",
        opts.replications, opts.ref_periods
    ));
    if miss_report.is_empty() {
        table.note("deadline misses: none".to_string());
    } else {
        table.note(format!(
            "deadline misses by overhead-oblivious governors on the xscale platform: {}",
            miss_report.join("; ")
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_sets_save_energy_and_aware_variant_is_spotless() {
        let mut opts = RunOptions::quick();
        opts.replications = 2;
        let table = run(&opts);
        assert_eq!(table.rows.len(), 6); // 3 sets × 2 platforms
        for v in table.column("st-edf").unwrap() {
            assert!(v < 1.0, "st-edf should always save energy, got {v}");
        }
        // The overhead-aware variant must never appear in the miss note.
        for note in &table.notes {
            assert!(
                !note.contains("st-edf-oa on"),
                "aware variant missed: {note}"
            );
        }
        // Continuous platforms have zero switch overhead: no misses at all.
        for note in &table.notes {
            assert!(
                !note.contains("(continuous)"),
                "miss without overhead: {note}"
            );
        }
        // CNC (lowest U) saves more than avionics (highest U) on the
        // continuous platform.
        let cnc = table.value("cnc (continuous)", "st-edf").unwrap();
        let avionics = table.value("avionics (continuous)", "st-edf").unwrap();
        assert!(cnc < avionics);
    }
}
