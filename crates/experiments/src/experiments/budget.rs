//! `budget` — partitioned EDF-DVS under a shared platform power cap.
//!
//! The payoff demonstrator for the component/typed-event simulation
//! kernel: a platform-level budget component (a [`stadvs_sim::BudgetLedger`]
//! owned by the kernel's shared state) observes every core's speed grant
//! and throttles requests whose aggregate active draw would exceed a
//! global cap — a coupling between per-core engines that the old
//! independently-stepped per-core loops could not express.
//!
//! Union workloads of five tasks per core at a worst-case utilization of
//! 0.5 per core are partitioned onto four identical cubic-power cores by
//! worst-fit-decreasing, and the standard lineup runs under a cap sweep
//! from the physical maximum (never binds — bit-identical to the
//! uncapped path) down to 1.5 W. Energy is normalized per governor
//! against its own uncapped run, so a row reads as "what does the cap
//! cost *this* policy".
//!
//! Expected shape — the headline: a shared cap is ruinous for `no-dvs`
//! (it always requests full speed, so the fixed-order grant loop starves
//! later cores down to the floor: throttles pile up and hard deadlines
//! fall) but nearly free for the slack-reclaiming governors, whose
//! steady-state speeds already draw far less than the cap — `st-edf`
//! sails under even the tightest cap with zero throttles, zero misses,
//! and unchanged energy.

use stadvs_power::{Platform, Processor};
use stadvs_sim::{PlatformScratch, PlatformSim, SimConfig, TaskSet};
use stadvs_workload::{partitioner_by_name, DemandPattern};

use crate::experiments::RunOptions;
use crate::runner::{make_governor, PlatformWorkload, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Cores on the shared-budget platform.
pub const CORES: usize = 4;
/// Tasks per core of every union workload.
pub const N_TASKS_PER_CORE: usize = 5;
/// Worst-case utilization contributed per core (fully admitted by WFD,
/// see `fig8_cores`).
pub const UTIL_PER_CORE: f64 = 0.5;
/// The cap sweep, in watts of aggregate active draw (label, cap). The
/// first entry is the physical maximum — [`CORES`] cores at full speed
/// on the normalized cubic model draw exactly `CORES` watts — so it
/// never binds and pins the uncapped baseline through the same path.
pub const CAPS: &[(&str, f64)] = &[
    ("uncapped", CORES as f64),
    ("3.0W", 3.0),
    ("2.0W", 2.0),
    ("1.5W", 1.5),
];

/// Builds the per-core simulator for one partitioned workload.
fn platform_sim(workload: &PlatformWorkload, platform: &Platform, horizon: f64) -> PlatformSim {
    let assignments: Vec<Option<TaskSet>> = (0..CORES)
        .map(|c| workload.partition.core_task_set(&workload.case.tasks, c))
        .collect();
    PlatformSim::new(
        platform.clone(),
        assignments,
        SimConfig::new(horizon).expect("experiment horizon is valid"),
    )
    .expect("admitted partitions are feasible per core")
}

/// The per-row report columns.
const COLUMNS: &[&str] = &[
    "energy",
    "normalized",
    "throttles",
    "misses",
    "peak_draw",
];

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let mut table = Table::new(
        "budget — shared platform power cap (4 WFD-partitioned cores, \
         5 tasks/core, U = 0.5/core)",
        "cap/governor",
        COLUMNS.iter().map(|s| s.to_string()).collect(),
    );
    let partitioner = partitioner_by_name("wfd").expect("registered partitioner");
    let workloads: Vec<PlatformWorkload> = (0..opts.replications)
        .map(|rep| {
            let case = WorkloadCase::synthetic_union(
                CORES,
                N_TASKS_PER_CORE,
                UTIL_PER_CORE,
                DemandPattern::Uniform { min: 0.2, max: 1.0 },
                rep as u64, // xtask:allow(as-cast): replication index as seed
            );
            PlatformWorkload::partitioned(case, partitioner.as_ref(), CORES)
        })
        .collect();
    for w in &workloads {
        assert!(
            w.partition.admitted(),
            "WFD partition rejected a task at U = {UTIL_PER_CORE}/core"
        );
    }
    let platform = Platform::homogeneous(CORES, Processor::ideal_continuous())
        .expect("core counts are positive");
    let mut scratch = PlatformScratch::new();

    // Per-governor uncapped energies, one per replication — the
    // normalization denominators for every capped row of that governor.
    let mut uncapped: Vec<Vec<f64>> = vec![Vec::new(); STANDARD_LINEUP.len()];
    for (cap_label, cap_watts) in CAPS {
        for (g, name) in STANDARD_LINEUP.iter().enumerate() {
            let mut energy_sum = 0.0;
            let mut normalized_sum = 0.0;
            let mut throttles = 0u64;
            let mut misses = 0usize;
            let mut peak = 0.0f64;
            for (rep, workload) in workloads.iter().enumerate() {
                let sim = platform_sim(workload, &platform, opts.horizon);
                let execs: Vec<_> = (0..CORES)
                    .map(|c| workload.partition.core_demand(&workload.case.exec, c))
                    .collect();
                let (outcome, report) = sim
                    .run_budgeted(
                        |_| make_governor(name).expect("lineup names are platform-simulable"),
                        &execs,
                        *cap_watts,
                        &mut scratch,
                    )
                    .expect("budgeted platform simulation succeeds");
                let energy = outcome.total_energy();
                if uncapped[g].len() == rep {
                    // First (widest) cap in the sweep: record the
                    // never-binding baseline.
                    uncapped[g].push(energy);
                }
                energy_sum += energy;
                normalized_sum += energy / uncapped[g][rep];
                throttles += report.throttles;
                misses += outcome.miss_count();
                peak = peak.max(report.peak_draw);
            }
            let reps = workloads.len() as f64; // xtask:allow(as-cast): mean over reps
            table.push_row(
                format!("{cap_label}/{name}"),
                vec![
                    energy_sum / reps,
                    normalized_sum / reps,
                    throttles as f64, // xtask:allow(as-cast): exact small count
                    misses as f64,    // xtask:allow(as-cast): exact small count
                    peak,
                ],
            );
        }
        table.note(format!(
            "{cap_label}: cap {cap_watts} W over {CORES} cores (physical max {CORES} W)",
        ));
    }
    table.note(format!(
        "{} replications, horizon {} s, homogeneous ideal continuous cores under one \
         shared budget ledger, WFD partition, fixed-order grant arbitration; energy \
         normalized per governor against its own never-binding cap run",
        opts.replications, opts.horizon
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use stadvs_sim::FaultPlan;

    #[test]
    fn cap_sweep_shape_and_headline() {
        let table = run(&RunOptions::quick());
        assert_eq!(table.rows.len(), CAPS.len() * STANDARD_LINEUP.len());
        // The never-binding cap is a true uncapped baseline: no throttle,
        // unit normalized energy, and an aggregate draw within the cap.
        for name in STANDARD_LINEUP {
            let key = format!("uncapped/{name}");
            assert_eq!(table.value(&key, "throttles"), Some(0.0), "{key}");
            let norm = table.value(&key, "normalized").unwrap();
            assert!((norm - 1.0).abs() < 1e-12, "{key}: {norm}");
            assert!(table.value(&key, "peak_draw").unwrap() <= CORES as f64 + 1e-9);
        }
        // The headline: the tightest cap cripples no-dvs (starved cores,
        // lost hard deadlines) but is nearly free for st-edf.
        assert!(table.value("1.5W/no-dvs", "throttles").unwrap() > 0.0);
        assert!(table.value("1.5W/no-dvs", "misses").unwrap() > 0.0);
        assert_eq!(table.value("1.5W/st-edf", "throttles"), Some(0.0));
        assert_eq!(table.value("1.5W/st-edf", "misses"), Some(0.0));
        let st_norm = table.value("1.5W/st-edf", "normalized").unwrap();
        assert!((st_norm - 1.0).abs() < 1e-9, "st-edf under cap: {st_norm}");
        // Peak draws respect each cap (up to the floor grants, which draw
        // microwatts on the cubic model).
        for (cap_label, cap_watts) in CAPS {
            for name in STANDARD_LINEUP {
                let peak = table
                    .value(&format!("{cap_label}/{name}"), "peak_draw")
                    .unwrap();
                assert!(peak <= cap_watts + 0.01, "{cap_label}/{name}: {peak}");
            }
        }
    }

    #[test]
    fn never_binding_cap_is_bitwise_uncapped() {
        // The widest cap must be unobservable: bit-identical energy to the
        // plain (ledger-free) platform path on the same workload.
        let workload = PlatformWorkload::partitioned(
            WorkloadCase::synthetic_union(
                CORES,
                N_TASKS_PER_CORE,
                UTIL_PER_CORE,
                DemandPattern::Uniform { min: 0.2, max: 1.0 },
                0,
            ),
            partitioner_by_name("wfd").expect("registered").as_ref(),
            CORES,
        );
        let platform = Platform::homogeneous(CORES, Processor::ideal_continuous())
            .expect("core counts are positive");
        let sim = platform_sim(&workload, &platform, 2.0);
        let execs: Vec<_> = (0..CORES)
            .map(|c| workload.partition.core_demand(&workload.case.exec, c))
            .collect();
        let (capped, report) = sim
            .run_budgeted(
                |_| make_governor("st-edf").expect("st-edf exists"),
                &execs,
                CORES as f64,
                &mut PlatformScratch::new(),
            )
            .expect("budgeted run succeeds");
        let plain = sim
            .run_faulted_with_scratch(
                |_| make_governor("st-edf").expect("st-edf exists"),
                &execs,
                &FaultPlan::NONE,
                &mut PlatformScratch::new(),
            )
            .expect("plain run succeeds");
        assert_eq!(report.throttles, 0);
        assert_eq!(
            capped.total_energy().to_bits(),
            plain.total_energy().to_bits()
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(&RunOptions::quick());
        let b = run(&RunOptions::quick());
        assert_eq!(a.to_csv(), b.to_csv());
        assert_eq!(a.notes, b.notes);
    }
}
