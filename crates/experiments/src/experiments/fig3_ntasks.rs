//! `fig3_ntasks` — normalized energy vs task-set size.
//!
//! Fixed utilization 0.7 and BCET/WCET 0.5 while the number of tasks grows
//! from 2 to 20. Expected shape: `lpps-edf` degrades sharply with more
//! tasks (it is almost never alone); the other dynamic schemes are largely
//! size-insensitive — the robustness/stability claim of the paper family.

use stadvs_power::Processor;
use stadvs_workload::DemandPattern;

use crate::experiments::RunOptions;
use crate::runner::{Comparison, WorkloadCase, STANDARD_LINEUP};
use crate::table::Table;

/// Worst-case utilization of every set.
pub const UTILIZATION: f64 = 0.7;
/// Execution-demand pattern.
pub const PATTERN: DemandPattern = DemandPattern::Uniform { min: 0.5, max: 1.0 };
/// Task-count sweep points.
pub const SIZES: [usize; 7] = [2, 4, 6, 8, 12, 16, 20];

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Table {
    let comparison = Comparison::new(Processor::ideal_continuous(), opts.horizon);
    let mut table = Table::new(
        "fig3_ntasks — normalized energy vs task-set size (U = 0.7, BCET/WCET = 0.5)",
        "tasks",
        STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
    );
    let mut misses = 0;
    for (ni, &n) in SIZES.iter().enumerate() {
        let cases: Vec<WorkloadCase> = (0..opts.replications)
            .map(|rep| WorkloadCase::synthetic(n, UTILIZATION, PATTERN, (ni * 1_000 + rep) as u64))
            .collect();
        let agg = comparison.run_cases(&cases);
        misses += agg.iter().map(|a| a.total_misses).sum::<usize>();
        table.push_row(
            format!("{n}"),
            agg.iter().map(|a| a.mean_normalized).collect(),
        );
    }
    table.note(format!(
        "{} replications per point, horizon {} s, ideal continuous processor; total deadline misses: {}",
        opts.replications, opts.horizon, misses
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpps_degrades_with_size_while_stedf_is_stable() {
        let table = run(&RunOptions::quick());
        let lpps = table.column("lpps-edf").unwrap();
        let st = table.column("st-edf").unwrap();
        // lpps at 2 tasks is much better than at 20 tasks.
        assert!(lpps.first().unwrap() + 0.05 < *lpps.last().unwrap());
        // st-edf stays in a narrow band.
        let min = st.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = st.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 0.25, "st-edf band [{min}, {max}] too wide");
        assert!(table.notes[0].contains("misses: 0"));
    }
}
