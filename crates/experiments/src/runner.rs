//! The comparison machinery: run many governors on identical workloads.

use stadvs_analysis::{due_within, materialize_jobs, optimal_static_speed, yds_schedule, WorkKind};
use stadvs_baselines::{registry, GovernorCaps, OracleStatic};
use stadvs_core::{SlackEdf, SlackEdfConfig};
use stadvs_power::{Platform, Processor, Speed};
use stadvs_sim::{
    FaultPlan, Governor, PlatformOutcome, PlatformScratch, PlatformSim, SimConfig, SimOutcome,
    SimScratch, Simulator, TaskSet,
};
use stadvs_workload::{DemandPattern, ExecutionModel, PartitionReport, Partitioner, TaskSetSpec};

/// One reproducible workload: a task set plus its execution-demand model.
#[derive(Debug, Clone)]
pub struct WorkloadCase {
    /// The task set.
    pub tasks: TaskSet,
    /// The deterministic execution-demand model.
    pub exec: ExecutionModel,
}

impl WorkloadCase {
    /// A synthetic case from the literature-default generators.
    ///
    /// # Panics
    ///
    /// Panics if the spec or pattern parameters are out of range (callers
    /// pass experiment constants).
    pub fn synthetic(
        n_tasks: usize,
        utilization: f64,
        pattern: DemandPattern,
        seed: u64,
    ) -> WorkloadCase {
        let tasks = TaskSetSpec::new(n_tasks, utilization)
            .expect("experiment parameters are valid")
            .with_seed(seed)
            .generate()
            .expect("generation succeeds for valid parameters");
        let exec = ExecutionModel::new(pattern)
            .expect("experiment pattern is valid")
            .with_seed(seed ^ 0x5EED_5EED_5EED_5EED);
        WorkloadCase { tasks, exec }
    }

    /// A case over a fixed task set.
    pub fn fixed(tasks: TaskSet, pattern: DemandPattern, seed: u64) -> WorkloadCase {
        let exec = ExecutionModel::new(pattern)
            .expect("experiment pattern is valid")
            .with_seed(seed);
        WorkloadCase { tasks, exec }
    }

    /// A multiprocessor-scale case: the union of `cores` independently
    /// seeded synthetic sets of `n_tasks` tasks at `utilization` each —
    /// total utilization `cores · utilization` over `cores · n_tasks`
    /// tasks, to be re-partitioned by a [`Partitioner`]. Task ids are
    /// global across the union; one [`ExecutionModel`] keyed on those
    /// global ids supplies demand, so a task keeps its demand stream no
    /// matter which core a partitioner assigns it to.
    ///
    /// # Panics
    ///
    /// Panics if the spec or pattern parameters are out of range (callers
    /// pass experiment constants).
    pub fn synthetic_union(
        cores: usize,
        n_tasks: usize,
        utilization: f64,
        pattern: DemandPattern,
        seed: u64,
    ) -> WorkloadCase {
        let mut tasks = Vec::with_capacity(cores * n_tasks);
        for c in 0..cores as u64 {
            let sub = TaskSetSpec::new(n_tasks, utilization)
                .expect("experiment parameters are valid")
                .with_seed(seed ^ (c.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .generate()
                .expect("generation succeeds for valid parameters");
            tasks.extend(sub.tasks().iter().cloned());
        }
        let tasks = TaskSet::new(tasks).expect("union of non-empty sets is non-empty");
        let exec = ExecutionModel::new(pattern)
            .expect("experiment pattern is valid")
            .with_seed(seed ^ 0x5EED_5EED_5EED_5EED);
        WorkloadCase { tasks, exec }
    }
}

/// Per-governor result on one workload case.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorOutcome {
    /// Governor (or pseudo-governor) name.
    pub name: String,
    /// Absolute energy, in joules.
    pub energy: f64,
    /// Energy normalized to `no-dvs` on the same workload.
    pub normalized: f64,
    /// Speed switches performed.
    pub switches: u64,
    /// Completed jobs.
    pub jobs: usize,
    /// Deadline misses (attributed + unattributed; must be zero for every
    /// hard-real-time governor on fault-free runs).
    pub misses: usize,
    /// Misses of fault-contaminated jobs. A miss *not* counted here is an
    /// algorithm bug, never an injection artifact.
    pub fault_misses: usize,
    /// Injected WCET overruns detected during the run.
    pub overruns: u64,
    /// Completed overrun-recovery episodes (detection → ready set empty).
    pub recovery_episodes: u64,
    /// Mean recovery latency over those episodes, in seconds (0 if none).
    pub mean_recovery_latency: f64,
}

impl GovernorOutcome {
    fn from_outcome(name: &str, outcome: &SimOutcome, baseline_energy: f64) -> GovernorOutcome {
        GovernorOutcome {
            name: name.to_string(),
            energy: outcome.total_energy(),
            normalized: outcome.total_energy() / baseline_energy,
            switches: outcome.switches,
            jobs: outcome.completed_jobs(),
            misses: outcome.miss_count(),
            fault_misses: outcome.fault_attributed_misses(),
            overruns: outcome.faults.overruns,
            recovery_episodes: outcome.faults.recovery_episodes,
            mean_recovery_latency: outcome.faults.mean_recovery_latency(),
        }
    }

    fn from_platform(
        name: &str,
        outcome: &PlatformOutcome,
        baseline_energy: f64,
    ) -> GovernorOutcome {
        let episodes: u64 = outcome
            .cores
            .iter()
            .map(|c| c.faults.recovery_episodes)
            .sum();
        let recovery_time: f64 = outcome
            .cores
            .iter()
            .map(|c| c.faults.mean_recovery_latency() * c.faults.recovery_episodes as f64)
            .sum();
        GovernorOutcome {
            name: name.to_string(),
            energy: outcome.total_energy(),
            normalized: outcome.total_energy() / baseline_energy,
            switches: outcome.switches(),
            jobs: outcome.completed_jobs(),
            misses: outcome.miss_count(),
            fault_misses: outcome.fault_attributed_misses(),
            overruns: outcome.cores.iter().map(|c| c.faults.overruns).sum(),
            recovery_episodes: episodes,
            mean_recovery_latency: if episodes == 0 {
                0.0
            } else {
                recovery_time / episodes as f64
            },
        }
    }
}

/// The standard governor lineup of the evaluation, in comparison order.
pub const STANDARD_LINEUP: &[&str] = &[
    "no-dvs",
    "static-edf",
    "lpps-edf",
    "cc-edf",
    "dra",
    "dra-ote",
    "feedback-edf",
    "la-edf",
    "st-edf",
];

/// Pseudo-governors resolved analytically rather than by simulation.
pub const ORACLE: &str = "oracle-static";
/// The clairvoyant YDS lower bound (not a governor at all).
pub const YDS_BOUND: &str = "yds-bound";

/// One row of the `st-edf` variant table (the experiments-layer complement
/// of `baselines::registry`: same shape — name, fresh-instance factory,
/// jitter-support flag).
struct StEdfVariant {
    name: &'static str,
    factory: fn() -> Box<dyn Governor>,
}

/// The paper governor and its configuration variants. Every variant's
/// slack analysis re-derives bounds from *actual* release instants, so all
/// of them keep their guarantee under bounded release jitter.
static ST_EDF_VARIANTS: &[StEdfVariant] = &[
    StEdfVariant {
        name: "st-edf",
        factory: || Box::new(SlackEdf::new()),
    },
    StEdfVariant {
        name: "st-edf-oa",
        factory: || Box::new(SlackEdf::with_config(SlackEdfConfig::overhead_aware())),
    },
    StEdfVariant {
        name: "st-edf[r]",
        factory: || Box::new(SlackEdf::with_config(SlackEdfConfig::reclaiming_only())),
    },
    StEdfVariant {
        name: "st-edf[a]",
        factory: || Box::new(SlackEdf::with_config(SlackEdfConfig::arrival_only())),
    },
    StEdfVariant {
        name: "st-edf[d]",
        factory: || Box::new(SlackEdf::with_config(SlackEdfConfig::demand_only())),
    },
    StEdfVariant {
        name: "st-edf-cs",
        factory: || Box::new(SlackEdf::with_config(SlackEdfConfig::critical_speed())),
    },
    StEdfVariant {
        name: "st-edf-pace",
        factory: || Box::new(SlackEdf::with_config(SlackEdfConfig::pacing(8))),
    },
];

/// Builds a fresh governor by name: the baseline registry names, `st-edf`
/// and its variants (`st-edf-oa`, `st-edf[r]`, `st-edf[a]`, `st-edf[d]`,
/// `st-edf-cs`, `st-edf-pace`). Each call returns a new instance — one
/// per run, and one per core in multiprocessor runs.
///
/// Returns `None` for unknown names and for the analytic pseudo-governors
/// ([`ORACLE`], [`YDS_BOUND`]), which [`Comparison::run_case`] resolves
/// itself.
pub fn make_governor(name: &str) -> Option<Box<dyn Governor>> {
    ST_EDF_VARIANTS
        .iter()
        .find(|v| v.name == name)
        .map(|v| (v.factory)())
        .or_else(|| registry::make(name))
}

/// The capability flags for `name`, derived from the governor tables (the
/// baseline registry's [`GovernorCaps`] column; every `st-edf` variant
/// supports every regime). `None` for unknown names and pseudo-governors.
///
/// This is the single source of truth behind every per-regime governor
/// exclusion (jitter, sporadic, weakly-hard) — tests and experiments
/// filter lineups through it instead of hard-coding name lists.
pub fn governor_caps(name: &str) -> Option<GovernorCaps> {
    if ST_EDF_VARIANTS.iter().any(|v| v.name == name) {
        return Some(GovernorCaps::ALL);
    }
    registry::entry(name).map(|e| e.caps)
}

/// Whether `name`'s hard-real-time argument survives bounded release
/// jitter (the jitter column of [`governor_caps`]). `None` for unknown
/// names and pseudo-governors.
pub fn governor_supports_jitter(name: &str) -> Option<bool> {
    governor_caps(name).map(|c| c.jitter)
}

/// Filters a lineup down to the governors whose capabilities cover
/// `required` (see [`GovernorCaps::covers`]); unknown names are dropped.
pub fn capable_lineup<'a>(names: &[&'a str], required: GovernorCaps) -> Vec<&'a str> {
    names
        .iter()
        .copied()
        .filter(|name| governor_caps(name).is_some_and(|caps| caps.covers(required)))
        .collect()
}

/// Filters a lineup down to the governors safe to run under a plan with
/// release jitter (no-op for plans without a jitter channel).
pub fn jitter_safe_lineup<'a>(names: &[&'a str], plan: &FaultPlan) -> Vec<&'a str> {
    if !plan.has_jitter() {
        return names.to_vec();
    }
    capable_lineup(
        names,
        GovernorCaps {
            jitter: true,
            ..GovernorCaps::default()
        },
    )
}

/// The capability requirements of running `tasks`: sporadic and
/// weakly-hard flags are set when the set contains a task of that model.
/// Frame tasks require no extra capability — the boost floor is applied
/// by the simulator above whatever speed the governor picks.
pub fn required_caps(tasks: &TaskSet) -> GovernorCaps {
    use stadvs_sim::TaskKind;
    let mut required = GovernorCaps::default();
    for (_, t) in tasks.iter() {
        match t.kind() {
            TaskKind::Hard | TaskKind::Frame { .. } => {}
            TaskKind::WeaklyHard { .. } => required.weakly_hard = true,
            TaskKind::Sporadic { .. } => required.sporadic = true,
        }
    }
    required
}

/// A configured comparison: platform, horizon, and governor lineup.
#[derive(Debug, Clone)]
pub struct Comparison {
    processor: Processor,
    horizon: f64,
    governors: Vec<String>,
    fault_plan: FaultPlan,
}

impl Comparison {
    /// Creates a comparison with the [`STANDARD_LINEUP`].
    pub fn new(processor: Processor, horizon: f64) -> Comparison {
        Comparison {
            processor,
            horizon,
            governors: STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
            fault_plan: FaultPlan::NONE,
        }
    }

    /// Replaces the governor lineup (names resolved by [`make_governor`],
    /// plus [`ORACLE`] and [`YDS_BOUND`]).
    pub fn with_governors<I, S>(mut self, names: I) -> Comparison
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.governors = names.into_iter().map(Into::into).collect();
        self
    }

    /// Injects `plan` into every simulated run — including the `no-dvs`
    /// normalization baseline, so normalized energy is measured under the
    /// *same* degradation, and including the analytic pseudo-governors'
    /// replays. The clairvoyant [`YDS_BOUND`] stays fault-blind (it is a
    /// bound on the nominal workload, not a simulation).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Comparison {
        self.fault_plan = plan;
        self
    }

    /// The fault plan injected into every run ([`FaultPlan::NONE`] by
    /// default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// The governor lineup.
    pub fn governors(&self) -> &[String] {
        &self.governors
    }

    /// The simulated horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Runs every governor on `case` and returns outcomes in lineup order.
    ///
    /// # Panics
    ///
    /// Panics if a lineup name is unknown, if the task set is infeasible,
    /// or if a simulation errors (experiment inputs are constructed
    /// feasible; an error here is a bug worth crashing on).
    pub fn run_case(&self, case: &WorkloadCase) -> Vec<GovernorOutcome> {
        self.run_case_counted(case, &mut SimScratch::new()).0
    }

    /// Like [`Comparison::run_case`], but threads `scratch` through every
    /// simulation (so a worker replaying many cases never re-allocates the
    /// engine's queues) and also returns how many simulations actually ran.
    ///
    /// The `no-dvs` normalization baseline is simulated exactly once per
    /// case: when `no-dvs` also appears in the lineup, its lineup entry
    /// reuses the baseline outcome instead of re-simulating (the run is
    /// deterministic, so the outcomes would be identical anyway). The
    /// returned count lets a regression test pin this.
    ///
    /// # Panics
    ///
    /// Same as [`Comparison::run_case`].
    pub fn run_case_counted(
        &self,
        case: &WorkloadCase,
        scratch: &mut SimScratch,
    ) -> (Vec<GovernorOutcome>, u32) {
        let sim = Simulator::new(
            case.tasks.clone(),
            self.processor.clone(),
            SimConfig::new(self.horizon).expect("horizon is valid"),
        )
        .expect("experiment task sets are feasible");
        let mut sims = 0u32;

        // The normalization baseline is always simulated, even if not in
        // the lineup.
        let baseline = {
            let mut no_dvs = make_governor("no-dvs").expect("no-dvs exists");
            sims += 1;
            sim.run_faulted_with_scratch(no_dvs.as_mut(), &case.exec, &self.fault_plan, scratch)
                .expect("no-dvs simulation succeeds")
        };
        let baseline_energy = baseline.total_energy();

        // Clairvoyant data, computed lazily only if requested.
        let needs_oracle = self.governors.iter().any(|g| g == ORACLE || g == YDS_BOUND);
        let due_jobs = needs_oracle.then(|| {
            let jobs = materialize_jobs(&case.tasks, &case.exec, self.horizon);
            due_within(&jobs, self.horizon)
        });

        let outcomes = self
            .governors
            .iter()
            .map(|name| {
                if name == YDS_BOUND {
                    let jobs = due_jobs.as_ref().expect("materialized above");
                    let sched = yds_schedule(jobs, WorkKind::Actual);
                    let energy = sched.energy(self.processor.power_model());
                    return GovernorOutcome {
                        name: name.clone(),
                        energy,
                        normalized: energy / baseline_energy,
                        switches: sched.blocks.len() as u64,
                        jobs: jobs.len(),
                        misses: 0,
                        fault_misses: 0,
                        overruns: 0,
                        recovery_episodes: 0,
                        mean_recovery_latency: 0.0,
                    };
                }
                let fresh;
                let outcome = if name == "no-dvs" {
                    &baseline
                } else {
                    sims += 1;
                    fresh = if name == ORACLE {
                        let jobs = due_jobs.as_ref().expect("materialized above");
                        let speed = optimal_static_speed(jobs, WorkKind::Actual)
                            .clamp(self.processor.min_speed().ratio(), 1.0);
                        let mut oracle =
                            OracleStatic::new(Speed::new(speed).expect("speed in range"));
                        sim.run_faulted_with_scratch(
                            &mut oracle,
                            &case.exec,
                            &self.fault_plan,
                            scratch,
                        )
                        .expect("oracle simulation succeeds")
                    } else {
                        let mut governor = make_governor(name)
                            .unwrap_or_else(|| panic!("unknown governor {name}"));
                        sim.run_faulted_with_scratch(
                            governor.as_mut(),
                            &case.exec,
                            &self.fault_plan,
                            scratch,
                        )
                        .expect("governor simulation succeeds")
                    };
                    &fresh
                };
                GovernorOutcome::from_outcome(name, outcome, baseline_energy)
            })
            .collect();
        (outcomes, sims)
    }

    /// Runs all `cases` (in parallel across worker threads) and aggregates
    /// per-governor means of normalized energy plus totals.
    pub fn run_cases(&self, cases: &[WorkloadCase]) -> Vec<AggregatedOutcome> {
        let results = self.run_cases_raw(cases);
        aggregate(&self.governors, &results)
    }

    /// Runs all `cases` in parallel and returns the raw per-case outcomes.
    ///
    /// Routed through [`crate::shard::run_sharded`] with one case per
    /// shard: work-stealing over an atomic cursor, one [`SimScratch`] per
    /// worker for the engine's queues, results combined in case order on
    /// the calling thread — the same deterministic shard machinery the
    /// fleet engine streams through, at experiment scale.
    pub fn run_cases_raw(&self, cases: &[WorkloadCase]) -> Vec<Vec<GovernorOutcome>> {
        crate::shard::run_sharded(cases.len(), None, SimScratch::new, |scratch, i| {
            self.run_case_counted(&cases[i], scratch).0
        })
    }
}

/// One multiprocessor workload: a union case plus its task-to-core
/// partition.
#[derive(Debug, Clone)]
pub struct PlatformWorkload {
    /// The union task set and its (global-id) demand model.
    pub case: WorkloadCase,
    /// The task-to-core assignment driving the per-core simulators.
    pub partition: PartitionReport,
}

impl PlatformWorkload {
    /// Partitions `case` onto `cores` cores with `partitioner`.
    ///
    /// Rejected tasks are *not* a panic — callers decide whether an
    /// incomplete admission is acceptable via
    /// [`PartitionReport::admitted`].
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero (an experiment-constant error).
    pub fn partitioned(
        case: WorkloadCase,
        partitioner: &dyn Partitioner,
        cores: usize,
    ) -> PlatformWorkload {
        let partition = partitioner
            .partition(&case.tasks, cores)
            .expect("experiment core counts are positive");
        PlatformWorkload { case, partition }
    }
}

/// A configured multiprocessor comparison: platform, horizon, and governor
/// lineup. The multiprocessor sibling of [`Comparison`] — every governor
/// runs through [`PlatformSim`] with a fresh instance per core, and
/// normalized energy is measured against `no-dvs` on the *same* platform
/// and partition.
///
/// The analytic pseudo-governors ([`ORACLE`], [`YDS_BOUND`]) are
/// uniprocessor constructions and are not accepted here.
#[derive(Debug, Clone)]
pub struct PlatformComparison {
    platform: Platform,
    horizon: f64,
    governors: Vec<String>,
    fault_plan: FaultPlan,
}

impl PlatformComparison {
    /// Creates a comparison with the [`STANDARD_LINEUP`].
    pub fn new(platform: Platform, horizon: f64) -> PlatformComparison {
        PlatformComparison {
            platform,
            horizon,
            governors: STANDARD_LINEUP.iter().map(|s| s.to_string()).collect(),
            fault_plan: FaultPlan::NONE,
        }
    }

    /// Replaces the governor lineup (names resolved by [`make_governor`]).
    pub fn with_governors<I, S>(mut self, names: I) -> PlatformComparison
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.governors = names.into_iter().map(Into::into).collect();
        self
    }

    /// Injects `plan` into every core of every simulated run, including
    /// the `no-dvs` normalization baseline.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> PlatformComparison {
        self.fault_plan = plan;
        self
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The governor lineup.
    pub fn governors(&self) -> &[String] {
        &self.governors
    }

    /// The simulated horizon.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Runs every governor on `workload` and returns outcomes in lineup
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if a lineup name is unknown or not platform-simulable, if
    /// the partition put more cores' worth of work on a core than is
    /// feasible, or if a simulation errors.
    pub fn run_case(&self, workload: &PlatformWorkload) -> Vec<GovernorOutcome> {
        self.run_case_with(workload, &mut PlatformScratch::new())
    }

    /// Like [`PlatformComparison::run_case`] but threading reusable
    /// per-core scratch memory.
    ///
    /// # Panics
    ///
    /// Same as [`PlatformComparison::run_case`].
    pub fn run_case_with(
        &self,
        workload: &PlatformWorkload,
        scratch: &mut PlatformScratch,
    ) -> Vec<GovernorOutcome> {
        let cores = self.platform.len();
        assert_eq!(
            workload.partition.cores().len(),
            cores,
            "partition was made for {} cores, platform has {}",
            workload.partition.cores().len(),
            cores
        );
        let assignments: Vec<Option<TaskSet>> = (0..cores)
            .map(|c| workload.partition.core_task_set(&workload.case.tasks, c))
            .collect();
        let sim = PlatformSim::new(
            self.platform.clone(),
            assignments,
            SimConfig::new(self.horizon).expect("horizon is valid"),
        )
        .expect("admitted partitions are feasible per core");
        let execs: Vec<_> = (0..cores)
            .map(|c| workload.partition.core_demand(&workload.case.exec, c))
            .collect();

        // The normalization baseline runs once, on the same partition.
        let baseline = sim
            .run_faulted_with_scratch(
                |_| make_governor("no-dvs").expect("no-dvs exists"),
                &execs,
                &self.fault_plan,
                scratch,
            )
            .expect("no-dvs platform simulation succeeds");
        let baseline_energy = baseline.total_energy();

        self.governors
            .iter()
            .map(|name| {
                let fresh;
                let outcome = if name == "no-dvs" {
                    &baseline
                } else {
                    fresh = sim
                        .run_faulted_with_scratch(
                            |_| {
                                make_governor(name).unwrap_or_else(|| {
                                    panic!("governor {name} is not platform-simulable")
                                })
                            },
                            &execs,
                            &self.fault_plan,
                            scratch,
                        )
                        .expect("governor platform simulation succeeds");
                    &fresh
                };
                GovernorOutcome::from_platform(name, outcome, baseline_energy)
            })
            .collect()
    }

    /// Runs all `workloads` (in parallel across worker threads) and
    /// aggregates per-governor means, mirroring [`Comparison::run_cases`].
    pub fn run_cases(&self, workloads: &[PlatformWorkload]) -> Vec<AggregatedOutcome> {
        let results = self.run_cases_raw(workloads);
        aggregate(&self.governors, &results)
    }

    /// Runs all `workloads` in parallel and returns raw per-case outcomes
    /// (one case per shard through [`crate::shard::run_sharded`], one
    /// [`PlatformScratch`] per worker — the same structure as
    /// [`Comparison::run_cases_raw`]).
    pub fn run_cases_raw(&self, workloads: &[PlatformWorkload]) -> Vec<Vec<GovernorOutcome>> {
        crate::shard::run_sharded(workloads.len(), None, PlatformScratch::new, |scratch, i| {
            self.run_case_with(&workloads[i], scratch)
        })
    }
}

/// Aggregated per-governor statistics over many cases.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatedOutcome {
    /// Governor name.
    pub name: String,
    /// Mean normalized energy across cases.
    pub mean_normalized: f64,
    /// Sample standard deviation of normalized energy.
    pub std_normalized: f64,
    /// Speed switches per completed job, averaged across cases.
    pub switches_per_job: f64,
    /// Total deadline misses across all cases (attributed + unattributed;
    /// must be zero on fault-free runs).
    pub total_misses: usize,
    /// Misses of fault-contaminated jobs across all cases. Any excess of
    /// [`AggregatedOutcome::total_misses`] over this is an algorithm bug.
    pub total_fault_misses: usize,
    /// Injected WCET overruns detected across all cases.
    pub total_overruns: u64,
    /// Mean recovery latency across every completed recovery episode of
    /// every case, in seconds (0 when no episode ran).
    pub mean_recovery_latency: f64,
    /// Number of cases aggregated.
    pub cases: usize,
}

/// Aggregates raw per-case outcomes into per-governor statistics.
///
/// Numeric order is part of the contract: `results` arrives in case order
/// (the shard merge in [`crate::shard`] pins it regardless of thread
/// count), every f64 reduction below walks that order left to right, and
/// the golden-pinned CSVs diff these exact bits. No sum here crosses a
/// shard boundary unordered — an aggregation that cannot pin its input
/// order (hash containers, unmerged parallel workers) must go through
/// `stadvs_analysis::stable_sum` / `compensated_sum` instead, which is
/// what the fleet engine's cross-shard accumulators do.
fn aggregate(governors: &[String], results: &[Vec<GovernorOutcome>]) -> Vec<AggregatedOutcome> {
    governors
        .iter()
        .enumerate()
        .map(|(gi, name)| {
            let normalized: Vec<f64> = results.iter().map(|r| r[gi].normalized).collect();
            let n = normalized.len().max(1) as f64;
            let mean = normalized.iter().sum::<f64>() / n;
            let var = if normalized.len() > 1 {
                normalized
                    .iter()
                    .map(|v| (v - mean) * (v - mean))
                    .sum::<f64>()
                    / (normalized.len() - 1) as f64
            } else {
                0.0
            };
            let spj: f64 = results
                .iter()
                .map(|r| r[gi].switches as f64 / r[gi].jobs.max(1) as f64)
                .sum::<f64>()
                / n;
            let episodes: u64 = results.iter().map(|r| r[gi].recovery_episodes).sum();
            let recovery_time: f64 = results
                .iter()
                .map(|r| r[gi].mean_recovery_latency * r[gi].recovery_episodes as f64)
                .sum();
            AggregatedOutcome {
                name: name.clone(),
                mean_normalized: mean,
                std_normalized: var.sqrt(),
                switches_per_job: spj,
                total_misses: results.iter().map(|r| r[gi].misses).sum(),
                total_fault_misses: results.iter().map(|r| r[gi].fault_misses).sum(),
                total_overruns: results.iter().map(|r| r[gi].overruns).sum(),
                mean_recovery_latency: if episodes == 0 {
                    0.0
                } else {
                    recovery_time / episodes as f64
                },
                cases: results.len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cases(n: usize) -> Vec<WorkloadCase> {
        (0..n as u64)
            .map(|seed| {
                WorkloadCase::synthetic(4, 0.6, DemandPattern::Uniform { min: 0.4, max: 1.0 }, seed)
            })
            .collect()
    }

    #[test]
    fn lineup_resolves() {
        for name in STANDARD_LINEUP {
            assert!(make_governor(name).is_some(), "{name}");
        }
        assert!(make_governor("st-edf[r]").is_some());
        assert!(make_governor("st-edf-oa").is_some());
        assert!(make_governor("bogus").is_none());
        assert!(make_governor(ORACLE).is_none()); // resolved by run_case
    }

    #[test]
    fn comparison_orders_governors_sensibly() {
        let cmp = Comparison::new(Processor::ideal_continuous(), 2.0).with_governors([
            "no-dvs",
            "static-edf",
            "st-edf",
            YDS_BOUND,
        ]);
        let agg = cmp.run_cases(&quick_cases(3));
        assert_eq!(agg.len(), 4);
        let by_name = |n: &str| {
            agg.iter()
                .find(|a| a.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert!((by_name("no-dvs").mean_normalized - 1.0).abs() < 1e-9);
        assert!(by_name("static-edf").mean_normalized < 1.0);
        assert!(by_name("st-edf").mean_normalized < by_name("static-edf").mean_normalized);
        assert!(by_name(YDS_BOUND).mean_normalized <= by_name("st-edf").mean_normalized + 1e-9);
        for a in &agg {
            assert_eq!(a.total_misses, 0, "{} missed", a.name);
        }
    }

    #[test]
    fn no_dvs_is_simulated_once_per_case() {
        let cmp = Comparison::new(Processor::ideal_continuous(), 1.0).with_governors([
            "no-dvs",
            "static-edf",
            "st-edf",
        ]);
        let case = &quick_cases(1)[0];
        let mut scratch = SimScratch::new();
        let (outcomes, sims) = cmp.run_case_counted(case, &mut scratch);
        assert_eq!(outcomes.len(), 3);
        // One baseline no-dvs run (reused for the lineup entry) plus one
        // run each for static-edf and st-edf. A fourth simulation means
        // the double-simulation bug is back.
        assert_eq!(sims, 3);
        assert!((outcomes[0].normalized - 1.0).abs() < 1e-12);

        // Without no-dvs in the lineup the baseline still runs once.
        let cmp2 =
            Comparison::new(Processor::ideal_continuous(), 1.0).with_governors(["static-edf"]);
        let (outcomes2, sims2) = cmp2.run_case_counted(case, &mut scratch);
        assert_eq!(outcomes2.len(), 1);
        assert_eq!(sims2, 2);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let cmp = Comparison::new(Processor::ideal_continuous(), 1.0)
            .with_governors(["no-dvs", "st-edf"]);
        let cases = quick_cases(4);
        let serial: Vec<Vec<GovernorOutcome>> = cases.iter().map(|c| cmp.run_case(c)).collect();
        let parallel = cmp.run_cases_raw(&cases);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn fault_plan_threads_through_every_run() {
        let plan = FaultPlan::new(5).with_overrun(0.5, 1.5).expect("valid");
        let cmp = Comparison::new(Processor::ideal_continuous(), 2.0)
            .with_governors(["no-dvs", "st-edf", ORACLE])
            .with_fault_plan(plan);
        let case = &quick_cases(1)[0];
        let outcomes = cmp.run_case(case);
        let overruns: u64 = outcomes.iter().map(|o| o.overruns).sum();
        assert!(overruns > 0, "p = 0.5 storm injected nothing");
        // Every miss under injection must be fault-attributed.
        for o in &outcomes {
            assert_eq!(o.misses, o.fault_misses, "{}: unattributed miss", o.name);
        }
        // The default plan is quiet.
        let clean = Comparison::new(Processor::ideal_continuous(), 2.0)
            .with_governors(["no-dvs", "st-edf"])
            .run_case(case);
        for o in &clean {
            assert_eq!(o.overruns, 0, "{}", o.name);
            assert_eq!(o.fault_misses, 0, "{}", o.name);
            assert_eq!(o.misses, 0, "{}", o.name);
        }
    }

    #[test]
    fn jitter_support_is_table_derived() {
        assert_eq!(governor_supports_jitter("la-edf"), Some(false));
        assert_eq!(governor_supports_jitter("cc-edf"), Some(true));
        assert_eq!(governor_supports_jitter("st-edf"), Some(true));
        assert_eq!(governor_supports_jitter("st-edf[r]"), Some(true));
        assert_eq!(governor_supports_jitter(ORACLE), None);
        assert_eq!(governor_supports_jitter("bogus"), None);

        let jittery = stadvs_workload::FaultPlanSpec::noisy_releases(0xA1)
            .build()
            .unwrap();
        let filtered = jitter_safe_lineup(STANDARD_LINEUP, &jittery);
        assert!(!filtered.contains(&"la-edf"));
        assert_eq!(filtered.len(), STANDARD_LINEUP.len() - 1);
        let quiet = jitter_safe_lineup(STANDARD_LINEUP, &FaultPlan::NONE);
        assert_eq!(quiet, STANDARD_LINEUP);
    }

    #[test]
    fn caps_are_table_derived() {
        assert_eq!(governor_caps("la-edf"), Some(GovernorCaps::PERIODIC_ONLY));
        assert_eq!(governor_caps("cc-edf"), Some(GovernorCaps::ALL));
        assert_eq!(governor_caps("st-edf"), Some(GovernorCaps::ALL));
        assert_eq!(governor_caps("st-edf-pace"), Some(GovernorCaps::ALL));
        assert_eq!(governor_caps(ORACLE), None);
        assert_eq!(governor_caps("bogus"), None);

        // Sporadic requirements exclude exactly the jitter exclusions.
        let sporadic_need = GovernorCaps {
            sporadic: true,
            ..GovernorCaps::default()
        };
        let filtered = capable_lineup(STANDARD_LINEUP, sporadic_need);
        assert!(!filtered.contains(&"la-edf"));
        assert_eq!(filtered.len(), STANDARD_LINEUP.len() - 1);
        // Weakly-hard requirements exclude nobody.
        let wh_need = GovernorCaps {
            weakly_hard: true,
            ..GovernorCaps::default()
        };
        assert_eq!(capable_lineup(STANDARD_LINEUP, wh_need), STANDARD_LINEUP);
        // No requirements: unknown names are still dropped.
        let with_bogus = ["cc-edf", "bogus"];
        assert_eq!(
            capable_lineup(&with_bogus, GovernorCaps::default()),
            ["cc-edf"]
        );
    }

    #[test]
    fn required_caps_reflect_task_models() {
        use stadvs_sim::Task;
        let hard = TaskSet::new(vec![Task::new(1.0, 4.0).unwrap()]).unwrap();
        assert_eq!(required_caps(&hard), GovernorCaps::default());
        let mixed = TaskSet::new(vec![
            Task::new(1.0, 4.0).unwrap(),
            Task::new(1.0, 4.0).unwrap().weakly_hard(1, 2).unwrap(),
            Task::new(1.0, 8.0).unwrap().sporadic(0.5, 3).unwrap(),
            Task::new(1.0, 8.0).unwrap().frame(0.5).unwrap(),
        ])
        .unwrap();
        let required = required_caps(&mixed);
        assert!(required.weakly_hard && required.sporadic && !required.jitter);
    }

    #[test]
    fn platform_comparison_runs_and_normalizes() {
        let case = WorkloadCase::synthetic_union(
            2,
            4,
            0.5,
            DemandPattern::Uniform { min: 0.4, max: 1.0 },
            7,
        );
        assert_eq!(case.tasks.len(), 8);
        let w = PlatformWorkload::partitioned(case, &stadvs_workload::WorstFitDecreasing, 2);
        assert!(w.partition.admitted());
        let platform = Platform::homogeneous(2, Processor::ideal_continuous()).expect("2 cores");
        let cmp = PlatformComparison::new(platform, 1.0).with_governors([
            "no-dvs",
            "static-edf",
            "st-edf",
        ]);
        let outcomes = cmp.run_case(&w);
        assert_eq!(outcomes.len(), 3);
        assert!((outcomes[0].normalized - 1.0).abs() < 1e-12);
        assert!(outcomes[2].normalized < outcomes[1].normalized);
        for o in &outcomes {
            assert_eq!(o.misses, 0, "{} missed on some core", o.name);
            assert!(o.jobs > 0, "{} completed nothing", o.name);
        }
    }

    #[test]
    fn platform_parallel_and_serial_agree() {
        let platform = Platform::homogeneous(2, Processor::ideal_continuous()).expect("2 cores");
        let cmp = PlatformComparison::new(platform, 0.5).with_governors(["no-dvs", "st-edf"]);
        let workloads: Vec<PlatformWorkload> = (0..4)
            .map(|seed| {
                let case = WorkloadCase::synthetic_union(
                    2,
                    3,
                    0.5,
                    DemandPattern::Uniform { min: 0.4, max: 1.0 },
                    seed,
                );
                PlatformWorkload::partitioned(case, &stadvs_workload::FirstFitDecreasing, 2)
            })
            .collect();
        let serial: Vec<Vec<GovernorOutcome>> = workloads.iter().map(|w| cmp.run_case(w)).collect();
        let parallel = cmp.run_cases_raw(&workloads);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn oracle_is_at_most_any_online_governor_on_average() {
        let cmp = Comparison::new(Processor::ideal_continuous(), 2.0)
            .with_governors(["st-edf", ORACLE, YDS_BOUND]);
        let agg = cmp.run_cases(&quick_cases(3));
        let yds = agg.iter().find(|a| a.name == YDS_BOUND).unwrap();
        let oracle = agg.iter().find(|a| a.name == ORACLE).unwrap();
        assert!(yds.mean_normalized <= oracle.mean_normalized + 1e-9);
        assert_eq!(oracle.total_misses, 0);
    }
}
