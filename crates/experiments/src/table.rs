//! Result tables (markdown and CSV rendering).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One result table: a labelled grid of numbers, rendered as markdown for
/// the terminal/EXPERIMENTS.md and as CSV for plotting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `fig1_util — normalized energy vs utilization`).
    pub title: String,
    /// Label of the row-key column (e.g. `U`, `BCET/WCET`).
    pub key_label: String,
    /// Column headers (e.g. governor names).
    pub columns: Vec<String>,
    /// Rows: `(key, one value per column)`; `NaN` renders as `-`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Free-form notes appended under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        key_label: impl Into<String>,
        columns: Vec<String>,
    ) -> Table {
        Table {
            title: title.into(),
            key_label: key_label.into(),
            columns,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, key: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width {} != column count {}",
            values.len(),
            self.columns.len()
        );
        self.rows.push((key.into(), values));
    }

    /// Appends a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |", self.key_label));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &self.columns {
            out.push_str("---|");
        }
        out.push('\n');
        for (key, values) in &self.rows {
            out.push_str(&format!("| {key} |"));
            for v in values {
                if v.is_nan() {
                    out.push_str(" - |");
                } else {
                    out.push_str(&format!(" {v:.4} |"));
                }
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }

    /// Renders the table as CSV (key column first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.key_label);
        for c in &self.columns {
            out.push(',');
            out.push_str(c);
        }
        out.push('\n');
        for (key, values) in &self.rows {
            out.push_str(key);
            for v in values {
                out.push(',');
                if v.is_nan() {
                    out.push_str("");
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// The value at `(row_key, column)` if present.
    pub fn value(&self, row_key: &str, column: &str) -> Option<f64> {
        let col = self.columns.iter().position(|c| c == column)?;
        let row = self.rows.iter().find(|(k, _)| k == row_key)?;
        row.1.get(col).copied()
    }

    /// The column values in row order, if the column exists.
    pub fn column(&self, column: &str) -> Option<Vec<f64>> {
        let col = self.columns.iter().position(|c| c == column)?;
        Some(self.rows.iter().map(|(_, v)| v[col]).collect())
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("test", "U", vec!["a".into(), "b".into()]);
        t.push_row("0.5", vec![1.0, 0.5]);
        t.push_row("0.9", vec![1.0, f64::NAN]);
        t.note("normalized to a");
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### test"));
        assert!(md.contains("| U | a | b |"));
        assert!(md.contains("| 0.5 | 1.0000 | 0.5000 |"));
        assert!(md.contains("| 0.9 | 1.0000 | - |"));
        assert!(md.contains("> normalized to a"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert!(csv.starts_with("U,a,b\n"));
        assert!(csv.contains("0.5,1,0.5"));
        assert!(csv.contains("0.9,1,\n"));
    }

    #[test]
    fn lookup() {
        let t = sample();
        assert_eq!(t.value("0.5", "b"), Some(0.5));
        assert_eq!(t.value("0.5", "missing"), None);
        assert_eq!(t.value("1.0", "a"), None);
        assert_eq!(t.column("a"), Some(vec![1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = sample();
        t.push_row("x", vec![1.0]);
    }
}
