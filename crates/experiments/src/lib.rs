//! # stadvs-experiments — the evaluation harness
//!
//! Regenerates every figure and table of the reproduced evaluation (see
//! `DESIGN.md` §4 for the experiment index):
//!
//! * [`WorkloadCase`] / [`Comparison`] — run many governors on identical,
//!   seeded workloads (in parallel across cases) and aggregate normalized
//!   energy, switch counts, and deadline misses,
//! * [`PlatformWorkload`] / [`PlatformComparison`] — the multiprocessor
//!   siblings: partitioned union workloads on an N-core platform, one
//!   fresh governor instance per core,
//! * [`experiments`] — one module per figure/table, each returning a
//!   [`Table`]; [`experiments::all`] is the registry the bench binaries
//!   iterate,
//! * [`shard`] — deterministic sharded execution (shard-local work,
//!   ordered merge) shared by the runner above and the fleet-scale sweep
//!   engine in `stadvs-fleet`,
//! * [`Table`] — markdown/CSV rendering, [`write_csv`] / [`write_markdown`]
//!   for artifacts.
//!
//! ```no_run
//! use stadvs_experiments::experiments::{by_id, RunOptions};
//!
//! let experiment = by_id("fig1_util").expect("registered");
//! let table = (experiment.run)(&RunOptions::quick());
//! println!("{table}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csv;
pub mod experiments;
mod runner;
pub mod shard;
mod table;

pub use csv::{write_csv, write_markdown};
pub use runner::{
    capable_lineup, governor_caps, governor_supports_jitter, jitter_safe_lineup, make_governor,
    required_caps, AggregatedOutcome, Comparison, GovernorOutcome, PlatformComparison,
    PlatformWorkload, WorkloadCase, ORACLE, STANDARD_LINEUP, YDS_BOUND,
};
pub use stadvs_baselines::GovernorCaps;
pub use table::Table;
