//! Writing result tables to disk.

use std::fs;
use std::io;
use std::path::Path;

use crate::table::Table;

/// Writes `table` as CSV to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates any I/O error from directory creation or the write.
pub fn write_csv(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, table.to_csv())
}

/// Writes `table` as markdown to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates any I/O error from directory creation or the write.
pub fn write_markdown(table: &Table, path: impl AsRef<Path>) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, table.to_markdown())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_both_formats() {
        let mut t = Table::new("t", "k", vec!["a".to_string()]);
        t.push_row("x", vec![1.5]);
        let dir = std::env::temp_dir().join("stadvs-csv-test");
        let csv_path = dir.join("nested/t.csv");
        let md_path = dir.join("nested/t.md");
        write_csv(&t, &csv_path).unwrap();
        write_markdown(&t, &md_path).unwrap();
        assert!(fs::read_to_string(&csv_path).unwrap().contains("x,1.5"));
        assert!(fs::read_to_string(&md_path).unwrap().contains("### t"));
        let _ = fs::remove_dir_all(&dir);
    }
}
