//! Deterministic sharded execution: shard-local work, ordered merge.
//!
//! Both the small experiment families and the fleet-scale sweep engine
//! run the same way: the index space is cut into contiguous shards, a
//! pool of scoped worker threads claims shards off an atomic cursor, each
//! worker computes a *shard-local* result with its own reusable scratch
//! state, and the results are combined **in shard-index order** on the
//! calling thread. Because every shard's result is a pure function of its
//! index (workers share nothing but the cursor) and the merge order is
//! pinned, the combined result is bit-identical regardless of thread
//! count or scheduling — the determinism contract of DESIGN.md §12
//! extended over parallel execution.
//!
//! Two entry points:
//!
//! * [`run_sharded`] collects every shard result and returns them in
//!   index order (used by the experiment runner, which needs all raw
//!   outcomes);
//! * [`run_sharded_streaming`] delivers results to a merge callback in
//!   strict index order *as they complete*, holding only out-of-order
//!   results (bounded by the number of in-flight workers) — the
//!   bounded-memory path of the fleet engine, with early-stop support
//!   for checkpointed partial runs.

use std::collections::BTreeMap;
use std::ops::{ControlFlow, Range};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;

/// The worker-thread count actually used for `shards` work items:
/// `requested` when given, otherwise the host parallelism, clamped to
/// `[1, shards]`.
pub fn resolve_threads(requested: Option<usize>, shards: usize) -> usize {
    let threads = requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    threads.clamp(1, shards.max(1))
}

/// Runs `run_shard` for every shard index in `0..shards` across a scoped
/// worker pool and returns the results in shard-index order.
///
/// Each worker owns one `W` (scratch state built by `make_worker`) for
/// its whole lifetime, so per-shard setup cost is amortized. With
/// `threads` = `Some(1)` (or one available core, or fewer than two
/// shards) everything runs inline on the calling thread — the reference
/// serial order the parallel path must reproduce bit-for-bit.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_sharded<W, R, MW, RS>(
    shards: usize,
    threads: Option<usize>,
    make_worker: MW,
    run_shard: RS,
) -> Vec<R>
where
    W: Send,
    R: Send,
    MW: Fn() -> W + Sync,
    RS: Fn(&mut W, usize) -> R + Sync,
{
    let threads = resolve_threads(threads, shards);
    if threads <= 1 {
        let mut worker = make_worker();
        return (0..shards).map(|s| run_shard(&mut worker, s)).collect();
    }
    let next = AtomicUsize::new(0);
    let next = &next;
    let make_worker = &make_worker;
    let run_shard = &run_shard;
    let mut slots: Vec<Option<R>> = Vec::with_capacity(shards);
    slots.resize_with(shards, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut worker = make_worker();
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= shards {
                            break;
                        }
                        produced.push((s, run_shard(&mut worker, s)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (s, result) in handle.join().expect("shard worker panicked") {
                slots[s] = Some(result);
            }
        }
    });
    slots
        .into_iter()
        .map(|r| r.expect("every shard index was claimed exactly once"))
        .collect()
}

/// Runs `run_shard` for every shard index in `shards` across a scoped
/// worker pool, delivering each result to `merge` in **strict ascending
/// index order**, and returns how many shards were merged.
///
/// Unlike [`run_sharded`] no result vector is materialized: completed
/// shards stream to the calling thread over a channel, results that
/// arrive ahead of their turn wait in a small reorder buffer (at most
/// roughly one entry per worker), and `merge(index, result)` is invoked
/// as each prefix extends. Returning [`ControlFlow::Break`] from `merge`
/// stops the run: workers quit after their in-flight shard and every
/// result past the break point is discarded. The merged prefix is always
/// `shards.start .. shards.start + merged`, so a checkpoint written at a
/// break resumes exactly where the merge stopped.
///
/// # Panics
///
/// Propagates panics from worker threads.
pub fn run_sharded_streaming<W, R, MW, RS, M>(
    shards: Range<usize>,
    threads: Option<usize>,
    make_worker: MW,
    run_shard: RS,
    mut merge: M,
) -> usize
where
    W: Send,
    R: Send,
    MW: Fn() -> W + Sync,
    RS: Fn(&mut W, usize) -> R + Sync,
    M: FnMut(usize, R) -> ControlFlow<()>,
{
    let (start, end) = (shards.start, shards.end);
    let total = end.saturating_sub(start);
    if total == 0 {
        return 0;
    }
    let threads = resolve_threads(threads, total);
    let mut merged = 0usize;
    if threads <= 1 {
        let mut worker = make_worker();
        for s in start..end {
            let result = run_shard(&mut worker, s);
            merged += 1;
            if merge(s, result).is_break() {
                break;
            }
        }
        return merged;
    }
    let next = AtomicUsize::new(start);
    let stop = AtomicBool::new(false);
    let (next, stop) = (&next, &stop);
    let make_worker = &make_worker;
    let run_shard = &run_shard;
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut worker = make_worker();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= end {
                        break;
                    }
                    let result = run_shard(&mut worker, s);
                    if tx.send((s, result)).is_err() {
                        break;
                    }
                }
            });
        }
        // Drop the original sender so the receive loop ends once every
        // worker has finished and released its clone.
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next_merge = start;
        'recv: for (s, result) in rx {
            pending.insert(s, result);
            while let Some(result) = pending.remove(&next_merge) {
                let index = next_merge;
                next_merge += 1;
                merged += 1;
                if merge(index, result).is_break() {
                    // Stop the cursor; in-flight sends land in the (soon
                    // dropped) channel and are discarded.
                    stop.store(true, Ordering::Relaxed);
                    break 'recv;
                }
            }
        }
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_resolution_clamps() {
        assert_eq!(resolve_threads(Some(8), 3), 3);
        assert_eq!(resolve_threads(Some(0), 3), 1);
        assert_eq!(resolve_threads(Some(2), 100), 2);
        assert_eq!(resolve_threads(Some(4), 0), 1);
        assert!(resolve_threads(None, 100) >= 1);
    }

    #[test]
    fn collected_results_are_in_index_order() {
        for threads in [Some(1), Some(4), None] {
            let out = run_sharded(
                23,
                threads,
                || 0u64,
                |w, s| {
                    *w += 1;
                    (s, *w)
                },
            );
            assert_eq!(out.len(), 23);
            for (i, (s, count)) in out.iter().enumerate() {
                assert_eq!(*s, i);
                assert!(*count >= 1, "worker scratch was threaded through");
            }
        }
    }

    #[test]
    fn zero_shards_is_fine() {
        let out: Vec<u32> = run_sharded(0, Some(4), || (), |_, s| s as u32);
        assert!(out.is_empty());
        let merged = run_sharded_streaming(
            5..5,
            Some(4),
            || (),
            |_, s| s,
            |_, _| ControlFlow::Continue(()),
        );
        assert_eq!(merged, 0);
    }

    #[test]
    fn streaming_merges_in_prefix_order() {
        for threads in [Some(1), Some(3), Some(7)] {
            let mut seen = Vec::new();
            let merged = run_sharded_streaming(
                10..50,
                threads,
                || (),
                |_, s| s * 2,
                |s, r| {
                    seen.push((s, r));
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(merged, 40);
            let expected: Vec<(usize, usize)> = (10..50).map(|s| (s, s * 2)).collect();
            assert_eq!(seen, expected, "threads = {threads:?}");
        }
    }

    #[test]
    fn streaming_early_stop_merges_exact_prefix() {
        for threads in [Some(1), Some(4)] {
            let mut seen = Vec::new();
            let merged = run_sharded_streaming(
                0..100,
                threads,
                || (),
                |_, s| s,
                |s, _| {
                    seen.push(s);
                    if s == 6 {
                        ControlFlow::Break(())
                    } else {
                        ControlFlow::Continue(())
                    }
                },
            );
            assert_eq!(merged, 7);
            assert_eq!(seen, (0..=6).collect::<Vec<_>>(), "threads = {threads:?}");
        }
    }
}
