//! Differential pinning of the incremental slack analysis.
//!
//! The governed hot path ([`DemandAnalysis::analyze`]) is incremental:
//! cached descriptors, a repaired cross-dispatch event sequence, and a
//! pruned sweep. Its contract is that none of that machinery is
//! observable — every dispatch must return a `DemandSlack` **bit-identical**
//! to the from-scratch, unpruned oracle
//! ([`DemandAnalysis::analyze_reference`]), while visiting no more events.
//!
//! This harness drives the exact st-edf hook sequence (allowance grant
//! before the sweep, settle on completion, drain on idle, invalidate on
//! overrun) through full simulations over a seeds × workloads × fault-plan
//! matrix, comparing the two analyzers at **every** dispatch. The fault
//! plans matter: release jitter moves release bases off the periodic
//! lattice (forcing the general sequence repair), and overruns exercise
//! the ledger-clear invalidation path.

use stadvs_core::sources::{DemandAnalysis, ReclaimedPool};
use stadvs_experiments::WorkloadCase;
use stadvs_power::{Processor, Speed};
use stadvs_sim::{
    ActiveJob, FaultPlan, Governor, JobRecord, SchedulerView, SimConfig, SimScratch, Simulator,
    TaskSet,
};
use stadvs_workload::{reference, DemandPattern};

/// Test governor replaying the st-edf hook sequence, running both
/// analyzers at every dispatch and asserting their agreement in place.
struct DifferentialProbe {
    pool: ReclaimedPool,
    demand: DemandAnalysis,
    /// Dispatches checked (also how many times each repair-path family
    /// had a chance to run).
    checked: u64,
    /// Dispatches where the pruned sweep visited strictly fewer events.
    pruned: u64,
    label: String,
}

impl Governor for DifferentialProbe {
    fn name(&self) -> &str {
        "differential-probe"
    }

    fn on_start(&mut self, tasks: &TaskSet, _processor: &Processor) {
        self.pool.reset(tasks);
        self.demand.invalidate();
        self.demand.reset_stats();
    }

    fn select_speed(&mut self, view: &SchedulerView<'_>, job: &ActiveJob) -> Speed {
        let _allowance = self.pool.allowance(view, job);
        let swept_before = self.demand.stats().events_swept;
        let result = self.demand.analyze(view, job, &self.pool);
        let swept = self.demand.stats().events_swept - swept_before;
        let (oracle, oracle_events) = self.demand.analyze_reference(view, job, &self.pool);
        assert!(
            // xtask:allow(float-eq): deliberate bit-identity check against the oracle
            result.slack.to_bits() == oracle.slack.to_bits()
                // xtask:allow(float-eq): deliberate bit-identity check, as above
                && result.binding_claims.to_bits() == oracle.binding_claims.to_bits(),
            "{}: dispatch {} at t={} diverged: incremental {result:?}, oracle {oracle:?}",
            self.label,
            self.checked,
            view.now(),
        );
        assert!(
            swept <= oracle_events,
            "{}: dispatch {} at t={}: pruned sweep visited {swept} events, oracle {oracle_events}",
            self.label,
            self.checked,
            view.now(),
        );
        self.checked += 1;
        if swept < oracle_events {
            self.pruned += 1;
        }
        Speed::FULL
    }

    fn on_completion(&mut self, _view: &SchedulerView<'_>, record: &JobRecord) {
        self.pool.settle(record, true);
    }

    fn on_idle(&mut self, _view: &SchedulerView<'_>) {
        self.pool.drain_on_idle();
    }

    fn on_overrun(&mut self, _view: &SchedulerView<'_>, _job: &ActiveJob) {
        self.pool.invalidate_on_overrun();
    }
}

/// The fault-plan axis: fault-free, WCET overruns (ledger clears), and
/// release jitter (off-lattice release bases).
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::NONE),
        (
            "overrun",
            FaultPlan::new(seed)
                .with_overrun(0.2, 1.3)
                .expect("valid overrun parameters"),
        ),
        (
            "jitter",
            FaultPlan::new(seed)
                .with_release_jitter(0.3, 0.2)
                .expect("valid jitter parameters"),
        ),
    ]
}

fn run_case(label: String, case: &WorkloadCase, horizon: f64, plan: &FaultPlan) -> (u64, u64) {
    let sim = Simulator::new(
        case.tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(horizon).expect("test horizon is valid"),
    )
    .expect("test task sets are feasible");
    let mut probe = DifferentialProbe {
        pool: ReclaimedPool::new(),
        demand: DemandAnalysis::new(1.0),
        checked: 0,
        pruned: 0,
        label,
    };
    sim.run_faulted_with_scratch(&mut probe, &case.exec, plan, &mut SimScratch::new())
        .expect("test simulation succeeds");
    (probe.checked, probe.pruned)
}

#[test]
fn incremental_analysis_matches_oracle_across_seeds_workloads_and_faults() {
    let avionics_tasks = reference::all()
        .into_iter()
        .find(|(name, _)| *name == "avionics")
        .expect("avionics reference set exists")
        .1;
    let avionics_horizon = avionics_tasks.max_period();

    let mut total_checked = 0u64;
    let mut total_pruned = 0u64;
    for seed in [11, 42, 77] {
        let synthetic =
            WorkloadCase::synthetic(6, 0.75, DemandPattern::Uniform { min: 0.3, max: 1.0 }, seed);
        let avionics = WorkloadCase::fixed(
            avionics_tasks.clone(),
            DemandPattern::Uniform { min: 0.5, max: 1.0 },
            seed,
        );
        for (plan_name, plan) in fault_plans(seed ^ 0xD1FF) {
            for (workload, case, horizon) in [
                ("synthetic", &synthetic, 12.0),
                ("avionics", &avionics, avionics_horizon),
            ] {
                let label = format!("seed {seed} / {workload} / {plan_name}");
                let (checked, pruned) = run_case(label, case, horizon, &plan);
                assert!(
                    checked > 0,
                    "seed {seed} {workload} {plan_name}: no dispatches"
                );
                total_checked += checked;
                total_pruned += pruned;
            }
        }
    }
    // The matrix must actually exercise the incremental machinery: many
    // dispatches overall, and the pruned sweep must beat the oracle on a
    // meaningful share of them (tail-binding sweeps legitimately tie).
    assert!(
        total_checked > 1_000,
        "matrix too small: {total_checked} dispatches"
    );
    assert!(
        total_pruned * 10 >= total_checked,
        "pruning never engaged: {total_pruned} of {total_checked} dispatches pruned"
    );
}
