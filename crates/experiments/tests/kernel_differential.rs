//! Differential pinning of the simulation kernel facade.
//!
//! [`Simulator::run_faulted_with_scratch`] is a thin facade over the
//! component/typed-event kernel: the legacy scheduler loop, re-expressed
//! as a `CoreEngine` component woken by self-scheduled events. Its
//! contract is that the kernel is **unobservable** — every outcome field
//! (job records, full traces, energy bits, switch counts, fault and model
//! reports) must be bit-identical to the kernel-less oracle drive
//! (`Simulator::run_faulted_direct`), which steps the very same engine in
//! a bare loop. The only permitted difference is [`SimOutcome::kernel`],
//! the event accounting the oracle cannot produce.
//!
//! The matrix crosses seeds × the full capable lineup × {fault-free,
//! overrun + release jitter, mixed task models}: jitter moves releases
//! off the periodic lattice, overruns exercise the fault/recovery event
//! paths, and the mixed model mix drives (m,k) skips, sporadic gaps, and
//! frame boosts through the kernel's note events.
//!
//! A second harness pins the kernel's determinism contract directly: the
//! delivery order of a fixed event set is invariant to the order in which
//! components hand their events to the queue (the `(time, seq, source)`
//! key is a total order, so heap insertion order is unobservable).

use stadvs_experiments::{
    capable_lineup, jitter_safe_lineup, make_governor, required_caps, WorkloadCase,
    STANDARD_LINEUP,
};
use stadvs_power::Processor;
use stadvs_sim::{
    ComponentCtx, ComponentId, EventHandler, EventKind, FaultPlan, Kernel, KernelStats, SimConfig,
    SimError, SimEvent, SimScratch, Simulator, TaskSet,
};
use stadvs_workload::{DemandPattern, ExecutionModel, ModelMix, TaskSetSpec};

/// Builds the shared test configuration: traces on, so the comparison
/// covers every segment the run produced, not just the aggregates.
fn config(horizon: f64) -> SimConfig {
    SimConfig::new(horizon)
        .expect("test horizon is valid")
        .with_trace(true)
}

/// Runs one (task set, exec, governor, plan) case through both drive
/// paths with fresh governors and scratches, and asserts bit-identity of
/// everything except the kernel accounting.
fn assert_facade_matches_direct(
    label: &str,
    tasks: &TaskSet,
    exec: &ExecutionModel,
    name: &str,
    horizon: f64,
    plan: &FaultPlan,
) {
    let sim = Simulator::new(tasks.clone(), Processor::ideal_continuous(), config(horizon))
        .expect("test task sets are feasible");
    let mut facade_gov = make_governor(name).expect("lineup names resolve");
    let facade = sim
        .run_faulted_with_scratch(facade_gov.as_mut(), exec, plan, &mut SimScratch::new())
        .expect("facade run succeeds");
    let mut direct_gov = make_governor(name).expect("lineup names resolve");
    let direct = sim
        .run_faulted_direct(direct_gov.as_mut(), exec, plan, &mut SimScratch::new())
        .expect("direct run succeeds");

    // The kernel must have actually driven the facade run...
    assert!(
        facade.kernel.handled_total() > 0,
        "{label}/{name}: facade run saw no kernel events"
    );
    // ...and the oracle path reports zeroed accounting by construction.
    assert_eq!(direct.kernel, KernelStats::default(), "{label}/{name}");

    // Everything else is bit-identical: job records, trace segments,
    // energy bits, switches, event counts, fault and model reports.
    let mut masked = facade.clone();
    masked.kernel = KernelStats::default();
    assert_eq!(
        masked, direct,
        "{label}/{name}: facade diverged from the direct oracle"
    );
}

/// The fault-plan axis: fault-free and overrun + release jitter combined
/// (both fault event paths live in the same run).
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::NONE),
        (
            "overrun+jitter",
            FaultPlan::new(seed)
                .with_overrun(0.25, 1.4)
                .expect("valid overrun parameters")
                .with_release_jitter(0.3, 0.15)
                .expect("valid jitter parameters"),
        ),
    ]
}

#[test]
fn facade_matches_direct_oracle_across_seeds_lineup_and_faults() {
    let mut cases = 0usize;
    for seed in [11u64, 23, 47] {
        let case =
            WorkloadCase::synthetic(6, 0.75, DemandPattern::Uniform { min: 0.3, max: 1.0 }, seed);
        for (plan_name, plan) in fault_plans(seed ^ 0xFACADE) {
            // Jitter is delay-only; governors that cannot absorb it are
            // excluded exactly as the experiment runner excludes them.
            for name in jitter_safe_lineup(STANDARD_LINEUP, &plan) {
                let label = format!("seed {seed}/{plan_name}");
                assert_facade_matches_direct(&label, &case.tasks, &case.exec, name, 12.0, &plan);
                cases += 1;
            }
        }
    }
    assert!(cases >= 30, "matrix too small: {cases} cases");
}

#[test]
fn facade_matches_direct_oracle_under_mixed_task_models() {
    let mix = ModelMix::new()
        .with_weakly_hard(2, 1, 3)
        .expect("mix literals valid")
        .with_sporadic(2, 0.5)
        .expect("mix literals valid")
        .with_frame(1, 0.5)
        .expect("mix literals valid");
    let mut cases = 0usize;
    for seed in [11u64, 23, 47] {
        let tasks = TaskSetSpec::new(6, 0.6)
            .expect("test parameters are valid")
            .with_model_mix(mix)
            .expect("mix fits the task count")
            .with_seed(seed)
            .generate()
            .expect("generation succeeds");
        let exec = ExecutionModel::new(DemandPattern::Uniform { min: 0.2, max: 1.0 })
            .expect("test pattern is valid")
            .with_seed(seed ^ 0x5EED);
        for name in capable_lineup(STANDARD_LINEUP, required_caps(&tasks)) {
            let label = format!("seed {seed}/mixed-models");
            assert_facade_matches_direct(&label, &tasks, &exec, name, 12.0, &FaultPlan::NONE);
            cases += 1;
        }
    }
    assert!(cases >= 15, "matrix too small: {cases} cases");
}

// ---------------------------------------------------------------------
// Kernel ordering invariance
// ---------------------------------------------------------------------

/// Probe component: records `(global delivery index, time bits, source)`
/// for every event delivered to it.
#[derive(Default)]
struct Probe {
    seen: Vec<(u64, u64, usize)>,
}

impl EventHandler for Probe {
    fn handle(&mut self, event: SimEvent, ctx: &mut ComponentCtx<'_>) -> Result<(), SimError> {
        self.seen.push((ctx.delivered(), event.time.to_bits(), event.source.0));
        Ok(())
    }
}

/// Replays `events` into a fresh kernel in the given interleaving and
/// returns the global delivery sequence as `(time bits, source)` pairs.
fn delivery_sequence(components: usize, events: &[SimEvent]) -> Vec<(u64, usize)> {
    let mut kernel = Kernel::new();
    kernel.reset(components, None);
    for &event in events {
        kernel.schedule(event);
    }
    let mut probes: Vec<Probe> = (0..components).map(|_| Probe::default()).collect();
    {
        let mut handlers: Vec<&mut dyn EventHandler> =
            probes.iter_mut().map(|p| p as &mut dyn EventHandler).collect();
        kernel.run(&mut handlers).expect("probe handlers never fail");
    }
    let mut merged: Vec<(u64, u64, usize)> =
        probes.into_iter().flat_map(|p| p.seen).collect();
    merged.sort_unstable();
    merged.into_iter().map(|(_, time, source)| (time, source)).collect()
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Property: the delivery order of a fixed per-component event
        /// set is invariant to the interleaving in which components hand
        /// their events to the kernel — including heavy time ties, which
        /// the coarse time grid makes frequent.
        #[test]
        fn delivery_order_is_registration_order_invariant(
            per_component in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 1..8),
                2..5,
            ),
            seed in 0u64..1024,
        ) {
            let components = per_component.len();
            // Each component's events target a fixed peer and carry
            // small-grid times, so cross-component ties are common.
            let mut per_source: Vec<Vec<SimEvent>> = per_component
                .iter()
                .enumerate()
                .map(|(source, times)| {
                    times
                        .iter()
                        .map(|&t| SimEvent {
                            time: f64::from(t) * 0.5,
                            kind: EventKind::Dispatch,
                            source: ComponentId(source),
                            target: ComponentId((source + 1) % components),
                        })
                        .collect()
                })
                .collect();

            // Canonical interleaving: source-major order.
            let canonical: Vec<SimEvent> =
                per_source.iter().flatten().copied().collect();
            let expected = delivery_sequence(components, &canonical);

            // Permuted interleaving: a seeded round-robin that preserves
            // each component's own emission order (the seq stamp is
            // per-source, so that order is part of the contract).
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut permuted = Vec::with_capacity(canonical.len());
            while per_source.iter().any(|q| !q.is_empty()) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pick = (state >> 33) as usize % components;
                for offset in 0..components {
                    let source = (pick + offset) % components;
                    if !per_source[source].is_empty() {
                        permuted.push(per_source[source].remove(0));
                        break;
                    }
                }
            }
            let actual = delivery_sequence(components, &permuted);
            prop_assert_eq!(expected, actual);
        }
    }
}
