//! Differential pinning of the simulation kernel facade.
//!
//! [`Simulator::run_faulted_with_scratch`] is a thin facade over the
//! component/typed-event kernel: the legacy scheduler loop, re-expressed
//! as a `CoreEngine` component woken by self-scheduled events. Its
//! contract is that the kernel is **unobservable** — every outcome field
//! (job records, full traces, energy bits, switch counts, fault and model
//! reports) must be bit-identical to the kernel-less oracle drive
//! (`Simulator::run_faulted_direct`), which steps the very same engine in
//! a bare loop. The only permitted difference is [`SimOutcome::kernel`],
//! the event accounting the oracle cannot produce.
//!
//! The matrix crosses seeds × the full capable lineup × {fault-free,
//! overrun + release jitter, mixed task models}: jitter moves releases
//! off the periodic lattice, overruns exercise the fault/recovery event
//! paths, and the mixed model mix drives (m,k) skips, sporadic gaps, and
//! frame boosts through the kernel's note events.
//!
//! A second harness pins the kernel's determinism contract directly: the
//! delivery order of a fixed event set is invariant to the order in which
//! components hand their events to the queue (the `(time, seq, source)`
//! key is a total order, so heap insertion order is unobservable).

use stadvs_experiments::{
    capable_lineup, jitter_safe_lineup, make_governor, required_caps, WorkloadCase,
    STANDARD_LINEUP,
};
use stadvs_power::Processor;
use stadvs_sim::{
    ComponentCtx, ComponentId, EventHandler, EventKind, FaultPlan, Kernel, KernelStats, SimConfig,
    SimError, SimEvent, SimScratch, Simulator, TaskSet,
};
use stadvs_workload::{DemandPattern, ExecutionModel, ModelMix, TaskSetSpec};

/// Builds the shared test configuration: traces on, so the comparison
/// covers every segment the run produced, not just the aggregates.
fn config(horizon: f64) -> SimConfig {
    SimConfig::new(horizon)
        .expect("test horizon is valid")
        .with_trace(true)
}

/// Runs one (task set, exec, governor, plan) case through both drive
/// paths with fresh governors and scratches, and asserts bit-identity of
/// everything except the kernel accounting.
fn assert_facade_matches_direct(
    label: &str,
    tasks: &TaskSet,
    exec: &ExecutionModel,
    name: &str,
    horizon: f64,
    plan: &FaultPlan,
) {
    let sim = Simulator::new(tasks.clone(), Processor::ideal_continuous(), config(horizon))
        .expect("test task sets are feasible");
    let mut facade_gov = make_governor(name).expect("lineup names resolve");
    let facade = sim
        .run_faulted_with_scratch(facade_gov.as_mut(), exec, plan, &mut SimScratch::new())
        .expect("facade run succeeds");
    let mut direct_gov = make_governor(name).expect("lineup names resolve");
    let direct = sim
        .run_faulted_direct(direct_gov.as_mut(), exec, plan, &mut SimScratch::new())
        .expect("direct run succeeds");

    // The kernel must have actually driven the facade run...
    assert!(
        facade.kernel.handled_total() > 0,
        "{label}/{name}: facade run saw no kernel events"
    );
    // ...and the oracle path reports zeroed accounting by construction.
    assert_eq!(direct.kernel, KernelStats::default(), "{label}/{name}");

    // Everything else is bit-identical: job records, trace segments,
    // energy bits, switches, event counts, fault and model reports.
    let mut masked = facade.clone();
    masked.kernel = KernelStats::default();
    assert_eq!(
        masked, direct,
        "{label}/{name}: facade diverged from the direct oracle"
    );
}

/// The fault-plan axis: fault-free and overrun + release jitter combined
/// (both fault event paths live in the same run).
fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::NONE),
        (
            "overrun+jitter",
            FaultPlan::new(seed)
                .with_overrun(0.25, 1.4)
                .expect("valid overrun parameters")
                .with_release_jitter(0.3, 0.15)
                .expect("valid jitter parameters"),
        ),
    ]
}

#[test]
fn facade_matches_direct_oracle_across_seeds_lineup_and_faults() {
    let mut cases = 0usize;
    for seed in [11u64, 23, 47] {
        let case =
            WorkloadCase::synthetic(6, 0.75, DemandPattern::Uniform { min: 0.3, max: 1.0 }, seed);
        for (plan_name, plan) in fault_plans(seed ^ 0xFACADE) {
            // Jitter is delay-only; governors that cannot absorb it are
            // excluded exactly as the experiment runner excludes them.
            for name in jitter_safe_lineup(STANDARD_LINEUP, &plan) {
                let label = format!("seed {seed}/{plan_name}");
                assert_facade_matches_direct(&label, &case.tasks, &case.exec, name, 12.0, &plan);
                cases += 1;
            }
        }
    }
    assert!(cases >= 30, "matrix too small: {cases} cases");
}

#[test]
fn facade_matches_direct_oracle_under_mixed_task_models() {
    let mix = ModelMix::new()
        .with_weakly_hard(2, 1, 3)
        .expect("mix literals valid")
        .with_sporadic(2, 0.5)
        .expect("mix literals valid")
        .with_frame(1, 0.5)
        .expect("mix literals valid");
    let mut cases = 0usize;
    for seed in [11u64, 23, 47] {
        let tasks = TaskSetSpec::new(6, 0.6)
            .expect("test parameters are valid")
            .with_model_mix(mix)
            .expect("mix fits the task count")
            .with_seed(seed)
            .generate()
            .expect("generation succeeds");
        let exec = ExecutionModel::new(DemandPattern::Uniform { min: 0.2, max: 1.0 })
            .expect("test pattern is valid")
            .with_seed(seed ^ 0x5EED);
        for name in capable_lineup(STANDARD_LINEUP, required_caps(&tasks)) {
            let label = format!("seed {seed}/mixed-models");
            assert_facade_matches_direct(&label, &tasks, &exec, name, 12.0, &FaultPlan::NONE);
            cases += 1;
        }
    }
    assert!(cases >= 15, "matrix too small: {cases} cases");
}

// ---------------------------------------------------------------------
// Kernel ordering invariance
// ---------------------------------------------------------------------

/// Probe component: records `(global delivery index, time bits, source)`
/// for every event delivered to it.
#[derive(Default)]
struct Probe {
    seen: Vec<(u64, u64, usize)>,
}

impl EventHandler for Probe {
    fn handle(&mut self, event: SimEvent, ctx: &mut ComponentCtx<'_>) -> Result<(), SimError> {
        self.seen.push((ctx.delivered(), event.time.to_bits(), event.source.0));
        Ok(())
    }
}

/// Replays `events` into a fresh kernel in the given interleaving and
/// returns the global delivery sequence as `(time bits, source)` pairs.
fn delivery_sequence(components: usize, events: &[SimEvent]) -> Vec<(u64, usize)> {
    let mut kernel = Kernel::new();
    kernel.reset(components, None);
    for &event in events {
        kernel.schedule(event);
    }
    let mut probes: Vec<Probe> = (0..components).map(|_| Probe::default()).collect();
    {
        let mut handlers: Vec<&mut dyn EventHandler> =
            probes.iter_mut().map(|p| p as &mut dyn EventHandler).collect();
        kernel.run(&mut handlers).expect("probe handlers never fail");
    }
    let mut merged: Vec<(u64, u64, usize)> =
        probes.into_iter().flat_map(|p| p.seen).collect();
    merged.sort_unstable();
    merged.into_iter().map(|(_, time, source)| (time, source)).collect()
}

/// The reference model the queue's total order is defined against: stamp
/// each event with its per-source sequence number in registration order,
/// then stable-sort by the `(time bits, seq, source)` key — exactly what
/// the retired binary heap guaranteed and the wheel must preserve.
fn model_sequence(components: usize, events: &[SimEvent]) -> Vec<(u64, usize)> {
    let mut seqs = vec![0u64; components];
    let mut keyed: Vec<([u64; 3], SimEvent)> = events
        .iter()
        .map(|&event| {
            let seq = seqs[event.source.0];
            seqs[event.source.0] += 1;
            ([event.time.to_bits(), seq, event.source.0 as u64], event)
        })
        .collect();
    keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    keyed
        .into_iter()
        .map(|(_, event)| (event.time.to_bits(), event.source.0))
        .collect()
}

#[test]
fn wheel_pop_order_matches_heap_model_through_overflow() {
    // Enough distinct pending timestamps to walk the queue through all
    // three tiers: the sorted front cache, the timing wheel, and the heap
    // overflow rail (which arms past cache + wheel capacity, well under
    // the 240 distinct times scheduled here). The kernel's own stats
    // prove the rail actually engaged.
    const COMPONENTS: usize = 4;
    const PER_SOURCE: usize = 60;
    let mut per_source: Vec<Vec<SimEvent>> = (0..COMPONENTS)
        .map(|source| {
            (0..PER_SOURCE)
                .map(|i| SimEvent {
                    // Distinct across all sources: interleaved lattices.
                    time: (i * COMPONENTS + source) as f64 * 0.125,
                    kind: EventKind::Dispatch,
                    source: ComponentId(source),
                    target: ComponentId((source + 1) % COMPONENTS),
                })
                .collect()
        })
        .collect();
    // A seeded round-robin interleaving (preserving per-source emission
    // order, which the per-source seq stamp makes part of the contract).
    let mut state = 0x1234_5678_9ABC_DEF1u64;
    let mut schedule = Vec::with_capacity(COMPONENTS * PER_SOURCE);
    while per_source.iter().any(|q| !q.is_empty()) {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = (state >> 33) as usize % COMPONENTS;
        for offset in 0..COMPONENTS {
            let source = (pick + offset) % COMPONENTS;
            if !per_source[source].is_empty() {
                schedule.push(per_source[source].remove(0));
                break;
            }
        }
    }

    let mut kernel = Kernel::new();
    kernel.reset(COMPONENTS, None);
    for &event in &schedule {
        kernel.schedule(event);
    }
    let mut probes: Vec<Probe> = (0..COMPONENTS).map(|_| Probe::default()).collect();
    {
        let mut handlers: Vec<&mut dyn EventHandler> =
            probes.iter_mut().map(|p| p as &mut dyn EventHandler).collect();
        kernel.run(&mut handlers).expect("probe handlers never fail");
    }
    let stats = kernel.queue_stats();
    assert!(
        stats.overflow_pushes > 0,
        "stress must spill past the wheel: {stats:?}"
    );
    let mut merged: Vec<(u64, u64, usize)> =
        probes.into_iter().flat_map(|p| p.seen).collect();
    merged.sort_unstable();
    let actual: Vec<(u64, usize)> =
        merged.into_iter().map(|(_, time, source)| (time, source)).collect();
    assert_eq!(model_sequence(COMPONENTS, &schedule), actual);
}

// ---------------------------------------------------------------------
// SoA field sync
// ---------------------------------------------------------------------

#[test]
fn soa_job_parameters_match_the_task_structs() {
    // The per-core engine reads task parameters from its SoA hot table,
    // not from the `Task` structs. Every job record a run produces must
    // carry parameters bit-identical to what the struct-of-arrays source
    // of truth derives — any copy-in drift (wrong stride, stale column,
    // reordered tasks) shows up as a bit diff here. Periodic tasks and a
    // fault-free plan keep the nominal lattice exact.
    for seed in [11u64, 23, 47] {
        let case =
            WorkloadCase::synthetic(6, 0.75, DemandPattern::Uniform { min: 0.3, max: 1.0 }, seed);
        let sim = Simulator::new(
            case.tasks.clone(),
            Processor::ideal_continuous(),
            config(12.0),
        )
        .expect("test task sets are feasible");
        let mut governor = make_governor("st-edf").expect("lineup names resolve");
        let outcome = sim
            .run_with_scratch(governor.as_mut(), &case.exec, &mut SimScratch::new())
            .expect("run succeeds");
        assert!(!outcome.jobs.is_empty(), "seed {seed}: no jobs released");
        for record in &outcome.jobs {
            let task = case.tasks.task(record.id.task);
            let expected_release = task.release_of(record.id.index);
            let expected_deadline = task.deadline_of(record.id.index);
            assert_eq!(
                record.release.to_bits(),
                expected_release.to_bits(),
                "seed {seed}/{}: release drifted from the task struct",
                record.id
            );
            assert_eq!(
                record.deadline.to_bits(),
                expected_deadline.to_bits(),
                "seed {seed}/{}: deadline drifted from the task struct",
                record.id
            );
            assert_eq!(
                record.wcet.to_bits(),
                task.wcet().to_bits(),
                "seed {seed}/{}: wcet drifted from the task struct",
                record.id
            );
        }
    }
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Property: the delivery order of a fixed per-component event
        /// set is invariant to the interleaving in which components hand
        /// their events to the kernel — including heavy time ties, which
        /// the coarse time grid makes frequent.
        #[test]
        fn delivery_order_is_registration_order_invariant(
            per_component in proptest::collection::vec(
                proptest::collection::vec(0u8..4, 1..8),
                2..5,
            ),
            seed in 0u64..1024,
        ) {
            let components = per_component.len();
            // Each component's events target a fixed peer and carry
            // small-grid times, so cross-component ties are common.
            let mut per_source: Vec<Vec<SimEvent>> = per_component
                .iter()
                .enumerate()
                .map(|(source, times)| {
                    times
                        .iter()
                        .map(|&t| SimEvent {
                            time: f64::from(t) * 0.5,
                            kind: EventKind::Dispatch,
                            source: ComponentId(source),
                            target: ComponentId((source + 1) % components),
                        })
                        .collect()
                })
                .collect();

            // Canonical interleaving: source-major order.
            let canonical: Vec<SimEvent> =
                per_source.iter().flatten().copied().collect();
            let expected = delivery_sequence(components, &canonical);

            // Permuted interleaving: a seeded round-robin that preserves
            // each component's own emission order (the seq stamp is
            // per-source, so that order is part of the contract).
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut permuted = Vec::with_capacity(canonical.len());
            while per_source.iter().any(|q| !q.is_empty()) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pick = (state >> 33) as usize % components;
                for offset in 0..components {
                    let source = (pick + offset) % components;
                    if !per_source[source].is_empty() {
                        permuted.push(per_source[source].remove(0));
                        break;
                    }
                }
            }
            let actual = delivery_sequence(components, &permuted);
            prop_assert_eq!(expected, actual);
        }

        /// Property: the kernel's delivery order is bit-identical to the
        /// heap model (per-source seq stamping + stable sort on the
        /// `(time bits, seq, source)` key) for arbitrary event sets —
        /// from all-ties (one bucket) through wide spreads that spill
        /// past the wheel onto the overflow rail.
        #[test]
        fn wheel_delivery_matches_heap_model(
            per_component in proptest::collection::vec(
                proptest::collection::vec(0u16..120, 1..50),
                2..5,
            ),
        ) {
            let components = per_component.len();
            let schedule: Vec<SimEvent> = per_component
                .iter()
                .enumerate()
                .flat_map(|(source, times)| {
                    times.iter().map(move |&t| SimEvent {
                        time: f64::from(t) * 0.125,
                        kind: EventKind::Dispatch,
                        source: ComponentId(source),
                        target: ComponentId((source + 1) % components),
                    })
                })
                .collect();
            let actual = delivery_sequence(components, &schedule);
            prop_assert_eq!(model_sequence(components, &schedule), actual);
        }
    }
}
