//! Golden-trace equivalence corpus.
//!
//! Pins the simulation engine bit-for-bit: for a recorded corpus of seeds
//! and governors, the full `SimOutcome` — energy breakdown, switch count,
//! event count, every job record, and every trace segment — must hash to
//! exactly the digest committed in `tests/golden/golden_traces.txt`.
//!
//! Any hot-path optimization of the simulator (event queues, allocation
//! reuse, incremental governor state) must leave these digests unchanged;
//! a diff here means the optimization altered simulation *semantics*, not
//! just speed.
//!
//! Regenerate (after an intentional semantic change) with:
//!
//! ```text
//! STADVS_BLESS=1 cargo test -p stadvs-experiments --test golden_trace
//! ```

use std::fmt::Write as _;

use stadvs_experiments::{make_governor, WorkloadCase};
use stadvs_power::Processor;
use stadvs_sim::{audit_outcome, FaultPlan, SegmentKind, SimConfig, SimOutcome, Simulator};
use stadvs_workload::DemandPattern;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/golden_traces.txt"
);

/// The corpus: 3 seeds x 3 governors covering the trivial (no-dvs), the
/// baseline-reclaiming (cc-edf), and the full slack-analysis (st-edf)
/// scheduling paths.
const SEEDS: [u64; 3] = [11, 23, 47];
const GOVERNORS: [&str; 3] = ["no-dvs", "cc-edf", "st-edf"];

const N_TASKS: usize = 6;
const UTILIZATION: f64 = 0.75;
const HORIZON: f64 = 4.0;

/// 64-bit FNV-1a over a byte stream.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }
}

fn digest_outcome(out: &SimOutcome) -> String {
    let mut records = Fnv::new();
    for r in &out.jobs {
        records.write_u64(r.id.task.0 as u64);
        records.write_u64(r.id.index);
        records.write_f64(r.release);
        records.write_f64(r.deadline);
        records.write_f64(r.wcet);
        records.write_f64(r.actual);
        match r.completion {
            Some(c) => {
                records.write_u64(1);
                records.write_f64(c);
            }
            None => records.write_u64(0),
        }
        records.write_f64(r.wall_time);
        records.write_u64(u64::from(r.preemptions));
    }
    let mut trace = Fnv::new();
    let segments = out.trace.as_ref().expect("corpus records traces");
    for seg in segments.segments() {
        trace.write_f64(seg.start);
        trace.write_f64(seg.end);
        trace.write_f64(seg.speed.ratio());
        match seg.kind {
            SegmentKind::Execute { job } => {
                trace.write_u64(1);
                trace.write_u64(job.task.0 as u64);
                trace.write_u64(job.index);
            }
            SegmentKind::Idle => trace.write_u64(2),
            SegmentKind::Transition => trace.write_u64(3),
        }
    }
    format!(
        "active={:016x} idle={:016x} transition={:016x} switches={} events={} \
         jobs={} misses={} segments={} records={:016x} trace={:016x}",
        out.energy.active.to_bits(),
        out.energy.idle.to_bits(),
        out.energy.transition.to_bits(),
        out.switches,
        out.events,
        out.jobs.len(),
        out.miss_count(),
        segments.segments().len(),
        records.0,
        trace.0,
    )
}

fn corpus_digests() -> String {
    let mut out = String::new();
    for &seed in &SEEDS {
        let case = WorkloadCase::synthetic(
            N_TASKS,
            UTILIZATION,
            DemandPattern::Uniform { min: 0.3, max: 1.0 },
            seed,
        );
        let sim = Simulator::new(
            case.tasks.clone(),
            Processor::ideal_continuous(),
            SimConfig::new(HORIZON)
                .expect("valid horizon")
                .with_trace(true),
        )
        .expect("corpus task sets are feasible");
        for name in GOVERNORS {
            let mut governor = make_governor(name).expect("corpus governor exists");
            let outcome = sim
                .run(governor.as_mut(), &case.exec)
                .expect("run succeeds");
            // Beyond matching the digest, every corpus run must satisfy
            // the fault-aware audit (with the empty plan: no overruns, no
            // unattributed misses, exact periodic releases).
            let audit = audit_outcome(&outcome, &case.tasks, &FaultPlan::NONE);
            assert!(audit.is_clean(), "{name}/{seed} failed the audit: {audit}");
            writeln!(
                out,
                "seed={seed} governor={name} {}",
                digest_outcome(&outcome)
            )
            .expect("string write");
        }
    }
    out
}

#[test]
fn golden_traces_match_committed_corpus() {
    let actual = corpus_digests();
    if std::env::var("STADVS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().expect("parent"))
            .expect("create golden dir");
        std::fs::write(FIXTURE, &actual).expect("write golden fixture");
        eprintln!("blessed {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; run with STADVS_BLESS=1 to create it");
    let mismatches: Vec<String> = expected
        .lines()
        .zip(actual.lines())
        .filter(|(e, a)| e != a)
        .map(|(e, a)| format!("expected: {e}\n  actual: {a}"))
        .collect();
    assert!(
        mismatches.is_empty() && expected.lines().count() == actual.lines().count(),
        "simulation outcomes diverged from the golden corpus \
         ({} of {} lines differ):\n{}",
        mismatches.len(),
        expected.lines().count(),
        mismatches.join("\n")
    );
}

/// Replaying the corpus twice in-process must be deterministic — otherwise
/// the golden digests could never be stable across optimizations.
#[test]
fn corpus_is_deterministic_in_process() {
    assert_eq!(corpus_digests(), corpus_digests());
}
