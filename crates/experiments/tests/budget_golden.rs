//! Golden fixture for the `budget` experiment.
//!
//! Pins the shared-power-cap sweep's entire quick-run artifact — the CSV
//! grid *and* the notes — byte-for-byte. The budgeted platform path is
//! deterministic end to end (seeded workloads, fixed-order grant
//! arbitration inside the kernel's shared ledger, stable event ordering),
//! so two consecutive runs must agree exactly, and any change to the
//! kernel's delivery order or the ledger's bisection shows up here as a
//! readable CSV diff.
//!
//! Regenerate (after an intentional semantic change) with:
//!
//! ```text
//! STADVS_BLESS=1 cargo test -p stadvs-experiments --test budget_golden
//! ```

use stadvs_experiments::experiments::{by_id, RunOptions};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/budget_sweep.csv"
);

/// The committed artifact: CSV grid first, then the notes as `# `-prefixed
/// trailer lines (CSV-comment convention, so the file still loads as CSV).
fn render() -> String {
    let experiment = by_id("budget").expect("budget experiment is registered");
    let table = (experiment.run)(&RunOptions::quick());
    let mut out = table.to_csv();
    for note in &table.notes {
        out.push_str("# ");
        out.push_str(note);
        out.push('\n');
    }
    out
}

#[test]
fn budget_sweep_matches_committed_csv() {
    let actual = render();
    if std::env::var("STADVS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().expect("parent"))
            .expect("create golden dir");
        std::fs::write(FIXTURE, &actual).expect("write golden fixture");
        eprintln!("blessed {FIXTURE}");
        return;
    }
    let expected = match std::fs::read_to_string(FIXTURE) {
        Ok(text) => text,
        Err(_) => {
            // First run on a fresh checkout: create the fixture so it can
            // be reviewed and committed, instead of failing opaquely.
            std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().expect("parent"))
                .expect("create golden dir");
            std::fs::write(FIXTURE, &actual).expect("write golden fixture");
            eprintln!("created missing golden fixture {FIXTURE}; review and commit it");
            return;
        }
    };
    assert_eq!(
        expected, actual,
        "budget sweep output diverged from the golden CSV"
    );
}

/// Two consecutive in-process runs must agree byte-for-byte — the
/// acceptance bar for the budgeted kernel path's determinism.
#[test]
fn budget_sweep_is_deterministic_across_consecutive_runs() {
    assert_eq!(render(), render());
}
