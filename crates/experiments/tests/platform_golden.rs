//! Golden fixture for the `fig8_cores` multiprocessor experiment.
//!
//! Pins the quick-run artifact — the {1, 2, 4, 8}-core × {ffd, wfd} CSV
//! grid *and* the per-platform admission notes — byte-for-byte. The
//! platform pipeline is deterministic end to end (seeded union workloads,
//! deterministic partitioning, one fresh governor per core, lockstep
//! per-core simulation), so any change to partitioner semantics, per-core
//! energy accounting, or the union seeding shows up here as a readable
//! CSV diff.
//!
//! Regenerate (after an intentional semantic change) with:
//!
//! ```text
//! STADVS_BLESS=1 cargo test -p stadvs-experiments --test platform_golden
//! ```

use stadvs_experiments::experiments::{by_id, RunOptions};

const FIXTURE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fig8_cores.csv");

/// The committed artifact: CSV grid first, then the notes as `# `-prefixed
/// trailer lines (CSV-comment convention, so the file still loads as CSV).
fn render() -> String {
    let experiment = by_id("fig8_cores").expect("fig8_cores is registered");
    let table = (experiment.run)(&RunOptions::quick());
    let mut out = table.to_csv();
    for note in &table.notes {
        out.push_str("# ");
        out.push_str(note);
        out.push('\n');
    }
    out
}

#[test]
fn fig8_cores_matches_committed_csv() {
    let actual = render();
    if std::env::var("STADVS_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(std::path::Path::new(FIXTURE).parent().expect("parent"))
            .expect("create golden dir");
        std::fs::write(FIXTURE, &actual).expect("write golden fixture");
        eprintln!("blessed {FIXTURE}");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE)
        .expect("golden fixture missing; run with STADVS_BLESS=1 to create it");
    assert_eq!(
        expected, actual,
        "fig8_cores output diverged from the golden CSV"
    );
}

/// Two consecutive in-process runs must agree byte-for-byte — the
/// acceptance bar for the platform pipeline's determinism.
#[test]
fn fig8_cores_is_deterministic_across_consecutive_runs() {
    assert_eq!(render(), render());
}
