//! Rule `wall-clock-in-sim`: no wall-clock reads (`Instant::now`,
//! `SystemTime::now`) inside the determinism-bound crates.
//!
//! Simulated time is the only clock the simulator may observe: every
//! timestamp in an event sequence, trace or CSV must derive from the
//! deterministic event queue, never from the host. A wall-clock read in
//! sim/analysis code is either dead weight or — worse — feeding a
//! decision (timeouts, adaptive budgets) that makes two runs of the same
//! seed diverge. Benchmark binaries (`crates/bench`) and the `xtask`
//! tooling measure real elapsed time on purpose and are out of scope.
//!
//! Use-resolution catches renamed imports: `use std::time::Instant as
//! Clock; Clock::now()` is still flagged.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::syntax::FileSyntax;

/// `std::time` types whose `now()` reads the host clock.
const CLOCK_TYPES: &[&str] = &["Instant", "SystemTime"];

pub fn check_wall_clock(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    syn: &FileSyntax,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || syn.use_mask[i] {
            continue;
        }
        if !tok.kind.is_ident("now") {
            continue;
        }
        let called = tokens
            .get(i + 1)
            .is_some_and(|t| t.kind == TokenKind::Open('('));
        let pathed = i >= 2 && tokens[i - 1].kind.is_punct("::");
        if !called || !pathed {
            continue;
        }
        let ty = match &tokens[i - 2].kind {
            TokenKind::Ident(n) => n,
            _ => continue,
        };
        let canonical = syn.canonical(ty);
        if !CLOCK_TYPES.contains(&canonical) {
            continue;
        }
        let anchor = &tokens[i - 2];
        out.push(Violation {
            rule: "wall-clock-in-sim",
            file: file.to_string(),
            line: anchor.line,
            col: anchor.col,
            message: format!(
                "`{ty}::now()` reads the host clock inside a \
                 determinism-bound crate; simulated time must come from the \
                 event queue — move timing to `crates/bench`, or justify \
                 with `// xtask:allow(wall-clock-in-sim): <reason>`"
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;
    use crate::syntax;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let syn = syntax::parse(&lexed.tokens);
        check_wall_clock("f.rs", &lexed.tokens, &mask, &syn)
    }

    #[test]
    fn flags_instant_and_system_time_now() {
        let src = "use std::time::{Instant, SystemTime};\n\
                   fn f() { let a = Instant::now(); let b = SystemTime::now(); }";
        assert_eq!(run(src).len(), 2);
    }

    #[test]
    fn flags_fully_pathed_now() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Instant::now()"));
    }

    #[test]
    fn flags_aliased_import() {
        let src = "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }";
        assert_eq!(run(src).len(), 1, "use-resolution must see through `as`");
    }

    #[test]
    fn other_now_methods_are_fine() {
        let src = "fn f(clock: &SimClock) { let t = clock.now(); let u = Queue::now(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn the_import_itself_is_not_flagged() {
        let src = "use std::time::Instant;\nfn f() {}";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)]\nmod t { fn f() { let t = std::time::Instant::now(); } }";
        assert!(run(src).is_empty());
    }
}
