//! Rule `shared-mut-state`: no `static mut` anywhere, and no lazily
//! initialized global state in the guarantee-critical crates.
//!
//! `static mut` is data-race-prone by construction (Miri and TSan both
//! flag it) and couples otherwise-independent simulations through
//! process-global state. Lazy statics (`OnceLock`, `OnceCell`,
//! `LazyLock`, `lazy_static!`, `thread_local!`) are subtler: their
//! initialization *timing and order* depend on which thread gets there
//! first, so any init that observes the environment — or any hot-path
//! read racing an init — breaks the run-to-run and thread-count
//! invariance the experiment runner relies on. In guarantee crates,
//! state is threaded explicitly (`SimScratch`, constructor parameters);
//! a genuinely pure, deterministic lazy table must say so with
//! `// xtask:allow(shared-mut-state): <reason>`.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::syntax::FileSyntax;

/// Lazily initialized cell types (flagged in guarantee crates only).
const LAZY_TYPES: &[&str] = &["OnceLock", "OnceCell", "LazyLock", "LazyCell", "Lazy"];

/// Lazily initialized global macros (flagged in guarantee crates only).
const LAZY_MACROS: &[&str] = &["lazy_static", "thread_local"];

pub fn check_shared_mut_state(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    syn: &FileSyntax,
    lazies_in_scope: bool,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || syn.use_mask[i] {
            continue;
        }
        let name = match &tok.kind {
            TokenKind::Ident(n) => n.as_str(),
            _ => continue,
        };
        if name == "static" && tokens.get(i + 1).is_some_and(|t| t.kind.is_ident("mut")) {
            out.push(Violation {
                rule: "shared-mut-state",
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                message: "`static mut` is shared mutable process state — a data \
                          race waiting for a second thread and a determinism \
                          leak across simulations; thread the state explicitly \
                          (constructor parameter or scratch struct)"
                    .to_string(),
            });
            continue;
        }
        if !lazies_in_scope {
            continue;
        }
        let lazy_ty = LAZY_TYPES.contains(&name) || LAZY_TYPES.contains(&syn.canonical(name));
        let lazy_macro =
            LAZY_MACROS.contains(&name) && tokens.get(i + 1).is_some_and(|t| t.kind.is_punct("!"));
        if lazy_ty || lazy_macro {
            let what = if lazy_macro {
                format!("{name}!")
            } else {
                name.to_string()
            };
            out.push(Violation {
                rule: "shared-mut-state",
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`{what}` initializes lazily — init order and timing vary \
                     with thread interleaving, which breaks run-to-run \
                     invariance in a guarantee crate; initialize explicitly \
                     at construction, or justify a pure deterministic table \
                     with `// xtask:allow(shared-mut-state): <reason>`"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;
    use crate::syntax;

    fn run(src: &str, lazies: bool) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let syn = syntax::parse(&lexed.tokens);
        check_shared_mut_state("f.rs", &lexed.tokens, &mask, &syn, lazies)
    }

    #[test]
    fn flags_static_mut_everywhere() {
        let src = "static mut COUNTER: u64 = 0;\nfn f() {}";
        assert_eq!(run(src, false).len(), 1);
        assert_eq!(run(src, true).len(), 1);
    }

    #[test]
    fn plain_static_is_fine() {
        let src = "static TABLE: [f64; 4] = [0.0; 4];\nfn f() {}";
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn lazies_flagged_only_in_scope() {
        let src = "use std::sync::OnceLock;\nstatic T: OnceLock<Table> = OnceLock::new();\n\
                   lazy_static! { static ref X: u64 = init(); }\nthread_local! { static Y: u64 = 0; }";
        // OnceLock appears twice outside the use decl (type + ctor), plus
        // one lazy_static! and one thread_local!.
        assert_eq!(run(src, true).len(), 4);
        assert!(run(src, false).is_empty());
    }

    #[test]
    fn lazy_static_ident_without_bang_is_fine() {
        let src = "fn f() { let lazy_static = 3; use_it(lazy_static); }";
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)]\nmod t { static mut S: u64 = 0; }";
        assert!(run(src, true).is_empty());
    }
}
