//! Rule `as-cast`: no numeric `as` casts in claims/ledger arithmetic
//! (`crates/core`).
//!
//! The slack currency is wall-clock claims accumulated in `f64`; chunk
//! counts and window sizes are integers. An `as` cast between the two
//! silently truncates, saturates or rounds — each of which has produced
//! real accounting bugs in DVS schedulers (a claim rounded down is slack
//! granted twice). Conversions go through `stadvs_core::num` (range-checked
//! count conversion) or lossless `From`/`f64::from` impls; the few
//! deliberate sites carry `// xtask:allow(as-cast): <reason>`.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;

const NUMERIC_TYPES: &[&str] = &[
    "f32", "f64", "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128",
    "usize",
];

/// Runs the rule over one file's tokens. `mask[i]` marks test-only tokens.
pub fn check_as_cast(file: &str, tokens: &[Token], mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || !tok.kind.is_ident("as") {
            continue;
        }
        // A cast has an expression on the left (identifier, literal or a
        // closing delimiter) — this excludes `use x as y` and
        // `extern crate x as y`, where the left side is also an identifier,
        // so rule those out by keyword instead.
        let prev_ok = i.checked_sub(1).map(|p| &tokens[p].kind).is_some_and(|k| {
            matches!(
                k,
                TokenKind::Ident(_) | TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Close(_)
            )
        });
        let target = match tokens.get(i + 1).map(|t| &t.kind) {
            Some(TokenKind::Ident(n)) if NUMERIC_TYPES.contains(&n.as_str()) => n.clone(),
            _ => continue,
        };
        if !prev_ok {
            continue;
        }
        // `use foo as f64` is not legal Rust, so any `as <numeric>` with an
        // expression on the left is a numeric cast.
        out.push(Violation {
            rule: "as-cast",
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`as {target}` cast in claims/ledger arithmetic; use \
                 stadvs_core::num::count_to_f64 (range-checked) or a \
                 lossless From conversion, or justify with \
                 `// xtask:allow(as-cast): <reason>`"
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        check_as_cast("f.rs", &lexed.tokens, &mask)
    }

    #[test]
    fn flags_int_to_float_and_float_to_int() {
        let v = run("fn f(n: usize, x: f64) { let a = n as f64; let b = x as usize; }");
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("as f64"));
        assert!(v[1].message.contains("as usize"));
    }

    #[test]
    fn flags_cast_after_call_chain() {
        let v = run("fn f(v: Vec<u8>) -> f64 { v.len() as f64 }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ignores_non_numeric_as() {
        assert!(
            run("use std::io as stdio;\nfn f(x: &dyn Any) { let _ = x as &dyn Other; }").is_empty()
        );
    }

    #[test]
    fn ignores_test_code() {
        assert!(run("#[cfg(test)]\nmod tests { fn t() { let _ = 3usize as f64; } }").is_empty());
    }

    #[test]
    fn lossless_from_passes() {
        assert!(run("fn f(k: u32) -> f64 { f64::from(k) }").is_empty());
    }
}
