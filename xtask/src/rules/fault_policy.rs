//! Rule `fault-policy-exhaustive`: every `match` on an [`OverrunPolicy`]
//! value in the guarantee-critical crates must name all of its variants —
//! no `_` wildcard and no catch-all binding arm.
//!
//! The overrun policy is the single point where the simulator decides what
//! a broken WCET contract *means* (abort, complete at full speed, shed the
//! next release). A wildcard arm at such a site silently absorbs any
//! future policy variant into whichever behaviour the author happened to
//! write last — the one class of bug that the compiler's own
//! exhaustiveness check exists to prevent. With no wildcard, adding a
//! variant to `OverrunPolicy` fails the build at every dispatch site and
//! forces an explicit decision; this rule keeps that property.
//!
//! Detection is token-level and deliberately narrow: a `match` counts as a
//! *policy match* when its scrutinee mentions `OverrunPolicy`,
//! `overrun_policy`, or `resolve_policy`, or when any of its arm
//! *patterns* (not arm bodies) names `OverrunPolicy` or one of its
//! variants. Inside a policy match, an arm whose pattern is exactly `_` or
//! a single lower-case binding identifier is flagged.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;

/// The `OverrunPolicy` variants; arm patterns naming any of these mark the
/// surrounding `match` as a policy match.
const VARIANTS: &[&str] = &["Abort", "CompleteAtMax", "SkipNext"];

/// Scrutinee identifiers that mark a policy match even when every arm is
/// (wrongly) a catch-all.
const SCRUTINEE_HINTS: &[&str] = &["OverrunPolicy", "overrun_policy", "resolve_policy"];

/// Runs the rule over one file's tokens. `mask[i]` marks test-only tokens.
pub fn check_fault_policy(file: &str, tokens: &[Token], mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if mask[i] || !tokens[i].kind.is_ident("match") {
            i += 1;
            continue;
        }
        // The match body is the first `{` at depth 0 after the scrutinee.
        let mut scrutinee_hit = false;
        let mut depth = 0usize;
        let mut j = i + 1;
        let open = loop {
            match tokens.get(j).map(|t| &t.kind) {
                None => break None,
                Some(TokenKind::Open('{')) if depth == 0 => break Some(j),
                Some(TokenKind::Open(_)) => depth += 1,
                Some(TokenKind::Close(_)) => {
                    if depth == 0 {
                        break None;
                    }
                    depth -= 1;
                }
                Some(TokenKind::Ident(w)) if SCRUTINEE_HINTS.contains(&w.as_str()) => {
                    scrutinee_hit = true;
                }
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else {
            i += 1;
            continue;
        };
        let Some(close) = super::matching_close(tokens, open) else {
            i += 1;
            continue;
        };
        let arms = collect_arms(tokens, open, close);
        let policy_match = scrutinee_hit
            || arms.iter().any(|&(start, arrow)| {
                tokens[start..arrow].iter().any(|t| match &t.kind {
                    TokenKind::Ident(w) => w == "OverrunPolicy" || VARIANTS.contains(&w.as_str()),
                    _ => false,
                })
            });
        if policy_match {
            for &(start, arrow) in &arms {
                if let Some(bad) = catch_all(tokens, start, arrow) {
                    let tok = &tokens[bad];
                    let what = match &tok.kind {
                        TokenKind::Ident(w) if w == "_" => "`_` wildcard arm".to_string(),
                        TokenKind::Ident(w) => format!("catch-all binding arm `{w}`"),
                        _ => "catch-all arm".to_string(),
                    };
                    out.push(Violation {
                        rule: "fault-policy-exhaustive",
                        file: file.to_string(),
                        line: tok.line,
                        col: tok.col,
                        message: format!(
                            "{what} in a `match` on OverrunPolicy; name every \
                             variant (Abort, CompleteAtMax, SkipNext) so a new \
                             policy forces a decision at this site, or justify \
                             with `// xtask:allow(fault-policy-exhaustive): \
                             <reason>`"
                        ),
                    });
                }
            }
        }
        // Resume just past the keyword so nested matches are also scanned.
        i = open + 1;
    }
    out
}

/// The arms of the match body `tokens[open..=close]`, as
/// `(pattern_start, arrow_index)` pairs. Arm bodies are skipped by
/// delimiter depth, so nested matches never confuse the outer walk.
fn collect_arms(tokens: &[Token], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut arms = Vec::new();
    let mut k = open + 1;
    while k < close {
        // Find this arm's `=>` at depth 0 relative to the body.
        let mut depth = 0usize;
        let mut arrow = None;
        let mut p = k;
        while p < close {
            match &tokens[p].kind {
                TokenKind::Open(_) => depth += 1,
                TokenKind::Close(_) => depth = depth.saturating_sub(1),
                kind if depth == 0 && kind.is_punct("=>") => {
                    arrow = Some(p);
                    break;
                }
                _ => {}
            }
            p += 1;
        }
        let Some(arrow) = arrow else { break };
        arms.push((k, arrow));
        // Skip the arm body: a brace block (plus optional trailing comma),
        // or everything up to the next comma at depth 0.
        if tokens
            .get(arrow + 1)
            .is_some_and(|t| t.kind == TokenKind::Open('{'))
        {
            let end = super::matching_close(tokens, arrow + 1).unwrap_or(close);
            k = end + 1;
            if tokens.get(k).is_some_and(|t| t.kind.is_punct(",")) {
                k += 1;
            }
        } else {
            let mut depth = 0usize;
            let mut p = arrow + 1;
            while p < close {
                match &tokens[p].kind {
                    TokenKind::Open(_) => depth += 1,
                    TokenKind::Close(_) => depth = depth.saturating_sub(1),
                    kind if depth == 0 && kind.is_punct(",") => break,
                    _ => {}
                }
                p += 1;
            }
            k = p + 1;
        }
    }
    arms
}

/// If the arm pattern `tokens[start..arrow]` is a catch-all — exactly `_`
/// or a single lower-case binding identifier, with an optional `if` guard —
/// returns the index of the offending token.
fn catch_all(tokens: &[Token], start: usize, arrow: usize) -> Option<usize> {
    // Strip the guard: tokens from the first depth-0 `if` onward.
    let mut depth = 0usize;
    let mut end = arrow;
    for (p, tok) in tokens.iter().enumerate().take(arrow).skip(start) {
        match &tok.kind {
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => depth = depth.saturating_sub(1),
            TokenKind::Ident(w) if depth == 0 && w == "if" => {
                end = p;
                break;
            }
            _ => {}
        }
    }
    if end != start + 1 {
        return None;
    }
    match &tokens[start].kind {
        TokenKind::Ident(w) if w == "_" => Some(start),
        // A lone lower-case identifier pattern is a binding that swallows
        // every variant (upper-case singletons are unit variants/consts).
        TokenKind::Ident(w)
            if w.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && !matches!(w.as_str(), "true" | "false") =>
        {
            Some(start)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        check_fault_policy("f.rs", &lexed.tokens, &mask)
    }

    #[test]
    fn flags_wildcard_arm_on_qualified_variants() {
        let v = run("fn f(p: OverrunPolicy) -> u8 {\n    match p {\n        \
             OverrunPolicy::Abort => 0,\n        _ => 1,\n    }\n}\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`_` wildcard"));
        assert_eq!(v[0].line, 4);
    }

    #[test]
    fn flags_binding_arm_and_guarded_wildcard() {
        let v = run(
            "fn f(x: T) {\n    match plan.resolve_policy(declared) {\n        \
             Abort => a(),\n        other => b(other),\n        \
             _ if cfg!(debug_assertions) => c(),\n    }\n}\n",
        );
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("catch-all binding arm `other`"));
        assert!(v[1].message.contains("`_` wildcard"));
    }

    #[test]
    fn exhaustive_match_passes() {
        assert!(run("fn f(p: OverrunPolicy) {\n    match p {\n        \
             OverrunPolicy::Abort => a(),\n        \
             OverrunPolicy::CompleteAtMax => { b(); }\n        \
             OverrunPolicy::SkipNext => c(),\n    }\n}\n",)
        .is_empty());
    }

    #[test]
    fn unrelated_matches_are_ignored() {
        // Wildcards over other enums stay legal, even when an arm *body*
        // mentions the policy type.
        assert!(
            run("fn f(m: Mode) -> OverrunPolicy {\n    match m {\n        \
             Mode::Strict => OverrunPolicy::Abort,\n        _ => fallback(),\n    }\n}\n",)
            .is_empty()
        );
    }

    #[test]
    fn nested_policy_match_is_found() {
        let v = run(
            "fn f(m: Mode, p: OverrunPolicy) {\n    match m {\n        _ => {\n            \
             match p {\n                OverrunPolicy::Abort => a(),\n                \
             rest => b(rest),\n            }\n        }\n    }\n}\n",
        );
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("catch-all binding arm `rest`"));
    }

    #[test]
    fn ignores_test_code() {
        assert!(run(
            "#[cfg(test)]\nmod tests {\n    fn t(p: OverrunPolicy) -> u8 {\n        \
             match p { OverrunPolicy::Abort => 0, _ => 1 }\n    }\n}\n",
        )
        .is_empty());
    }
}
