//! Rule `unseeded-rng`: no entropy-seeded random sources outside `xtask`
//! and the bench binaries.
//!
//! Every random draw in the workspace flows from an explicit `u64` seed
//! (`StdRng::seed_from_u64`, the splitmix64 job hashes): that is what
//! makes workloads, fault plans and whole experiment CSVs replayable.
//! `thread_rng()`, `from_entropy()` / `from_os_rng()`, `OsRng` and
//! `rand::random()` all pull operating-system entropy, so a single call
//! anywhere on the workload→sim→experiment path silently breaks
//! replayability — the failure only shows up later as a golden-trace
//! diff that cannot be reproduced.
//!
//! Fix by threading a seeded RNG (or deriving a sub-seed) from the
//! caller; justify genuinely nondeterministic tooling with
//! `// xtask:allow(unseeded-rng): <reason>`.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::syntax::FileSyntax;

/// Functions / constructors that read OS entropy.
const ENTROPY_FNS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng"];

/// Entropy-backed generator types.
const ENTROPY_TYPES: &[&str] = &["OsRng"];

pub fn check_unseeded_rng(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    syn: &FileSyntax,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || syn.use_mask[i] {
            continue;
        }
        let name = match &tok.kind {
            TokenKind::Ident(n) => n.as_str(),
            _ => continue,
        };
        let what = if ENTROPY_FNS.contains(&name) {
            format!("{name}()")
        } else if ENTROPY_TYPES.contains(&name) || ENTROPY_TYPES.contains(&syn.canonical(name)) {
            name.to_string()
        } else if name == "random" && is_rand_random(tokens, i, syn) {
            "rand::random()".to_string()
        } else {
            continue;
        };
        out.push(Violation {
            rule: "unseeded-rng",
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`{what}` draws operating-system entropy; every random source \
                 on the workload/sim/experiment path must derive from an \
                 explicit u64 seed (`StdRng::seed_from_u64`, splitmix64 \
                 sub-seeds) so runs replay bit-identically — or justify with \
                 `// xtask:allow(unseeded-rng): <reason>`"
            ),
        });
    }
    out
}

/// `random` counts only when it is rand's free function: `rand::random(`
/// or a bare `random(` resolved through `use rand::random`.
fn is_rand_random(tokens: &[Token], i: usize, syn: &FileSyntax) -> bool {
    let called = tokens
        .get(i + 1)
        .map(|t| matches!(t.kind, TokenKind::Open('(')) || t.kind.is_punct("::"))
        .unwrap_or(false);
    if !called {
        return false;
    }
    let pathed = i >= 2 && tokens[i - 1].kind.is_punct("::") && tokens[i - 2].kind.is_ident("rand");
    let imported = syn.import_path("random") == Some("rand::random")
        && !(i >= 1 && tokens[i - 1].kind.is_punct("."));
    pathed || imported
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;
    use crate::syntax;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let syn = syntax::parse(&lexed.tokens);
        check_unseeded_rng("f.rs", &lexed.tokens, &mask, &syn)
    }

    #[test]
    fn flags_thread_rng_and_from_entropy() {
        let src = "fn f() { let mut a = rand::thread_rng(); let mut b = StdRng::from_entropy(); }";
        assert_eq!(run(src).len(), 2);
    }

    #[test]
    fn flags_os_rng_uses_but_not_the_import() {
        let src = "use rand::rngs::OsRng;\nfn f() { let x: u64 = OsRng.gen(); }";
        let v = run(src);
        assert_eq!(v.len(), 1, "call site flagged, import masked: {v:?}");
    }

    #[test]
    fn flags_rand_random_pathed_and_imported() {
        let src =
            "use rand::random;\nfn f() { let a: f64 = rand::random(); let b: f64 = random(); }";
        assert_eq!(run(src).len(), 2);
    }

    #[test]
    fn seeded_rng_is_fine() {
        let src = "use rand::SeedableRng;\n\
                   fn f(seed: u64) { let mut rng = StdRng::seed_from_u64(seed); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unrelated_random_methods_are_fine() {
        let src = "fn f(gen: &Workload) { let x = gen.random(); sample_random(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_masked() {
        let src = "#[cfg(test)]\nmod t { fn f() { let mut r = rand::thread_rng(); } }";
        assert!(run(src).is_empty());
    }
}
