//! Rule `no-panic`: no `unwrap()`, `expect()`, `panic!()` (or the `todo!`/
//! `unimplemented!` stand-ins) in non-test library code of the
//! guarantee-critical crates.
//!
//! The simulator and analysis layers back a *hard* real-time claim: an
//! aborted process proves nothing about deadlines. Recoverable conditions
//! must surface as typed errors; genuinely-impossible states are asserted
//! with `debug_assert!` so release builds keep running while test builds
//! still catch contract drift. The `assert!` family is deliberately not
//! flagged — validated-constructor contracts with documented `# Panics`
//! sections are idiomatic — the rule targets ad-hoc abort paths.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;

/// Runs the rule over one file's tokens. `mask[i]` marks test-only tokens.
pub fn check_no_panic(file: &str, tokens: &[Token], mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let name = match &tok.kind {
            TokenKind::Ident(n) => n.as_str(),
            _ => continue,
        };
        let prev = i.checked_sub(1).map(|p| &tokens[p].kind);
        let next = tokens.get(i + 1).map(|t| &t.kind);
        let flagged = match name {
            // `.unwrap()` / `.expect(` — method position only, so
            // `unwrap_or` and friends stay legal.
            "unwrap" | "expect" => {
                prev.is_some_and(|k| k.is_punct("."))
                    && next.is_some_and(|k| *k == TokenKind::Open('('))
            }
            // `panic!(`, `todo!(`, `unimplemented!(` — macro position.
            "panic" | "todo" | "unimplemented" => next.is_some_and(|k| k.is_punct("!")),
            _ => false,
        };
        if flagged {
            out.push(Violation {
                rule: "no-panic",
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`{name}` aborts the process in guarantee-critical library \
                     code; return a typed error (or use debug_assert! for \
                     impossible states), or justify with \
                     `// xtask:allow(no-panic): <reason>`"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        check_no_panic("f.rs", &lexed.tokens, &mask)
    }

    #[test]
    fn flags_unwrap_expect_and_panic() {
        let v = run("fn f() { x.unwrap(); y.expect(\"reason\"); panic!(\"boom\"); }");
        assert_eq!(v.len(), 3);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn allows_unwrap_or_family() {
        assert!(
            run("fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }")
                .is_empty()
        );
    }

    #[test]
    fn allows_assert_and_debug_assert() {
        assert!(run("fn f() { assert!(ok); debug_assert!(fine, \"msg\"); }").is_empty());
    }

    #[test]
    fn ignores_test_code() {
        assert!(run("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }").is_empty());
        assert!(run("#[test]\nfn t() { x.unwrap(); }").is_empty());
    }

    #[test]
    fn flags_todo_and_unimplemented() {
        let v = run("fn f() { todo!(); }\nfn g() { unimplemented!(); }");
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ident_named_unwrap_is_not_a_method_call() {
        assert!(run("fn f(unwrap: u32) -> u32 { unwrap }").is_empty());
    }
}
