//! Rule `governor-doc`: every type implementing `Governor` must carry a
//! doc comment naming its safety argument.
//!
//! A governor picks speeds for a *hard* real-time simulator; its deadline
//! argument is the single most important fact about it and must live on the
//! type, not in tribal memory. The rule accepts any doc comment on the
//! implementing type's declaration that contains a `Safety` section or the
//! phrase "deadline-safe"/"deadline safety" (the workspace convention is a
//! sentence starting "Deadline safety:").
//!
//! Blanket impls over non-nominal self types (`&mut G`, `Box<G>`) are
//! skipped — they forward to an already-checked implementation.

use std::collections::HashMap;

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;

/// Where a nominal type was declared and whether its docs state a safety
/// argument.
#[derive(Debug, Clone)]
pub struct TypeDoc {
    pub file: String,
    pub line: usize,
    pub has_safety: bool,
}

/// Map from type name to every declaration seen across the workspace.
pub type TypeDocs = HashMap<String, Vec<TypeDoc>>;

/// Pass 1: records every non-test `struct`/`enum` declaration in `tokens`
/// together with whether its leading doc comments state a safety argument.
pub fn collect_type_docs(file: &str, tokens: &[Token], mask: &[bool], docs: &mut TypeDocs) {
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let is_decl_kw = tok.kind.is_ident("struct") || tok.kind.is_ident("enum");
        if !is_decl_kw {
            continue;
        }
        // `struct` must introduce a declaration, not e.g. appear in a path.
        let name = match tokens.get(i + 1).map(|t| &t.kind) {
            Some(TokenKind::Ident(n)) => n.clone(),
            _ => continue,
        };
        let doc_text = leading_docs(tokens, i);
        docs.entry(name).or_default().push(TypeDoc {
            file: file.to_string(),
            line: tok.line,
            has_safety: states_safety(&doc_text),
        });
    }
}

/// Pass 2: flags every `impl ... Governor for Type` whose `Type`
/// declaration (looked up in `docs`) lacks a safety argument.
pub fn check_governor_doc(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    docs: &TypeDocs,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || !tok.kind.is_ident("impl") {
            continue;
        }
        let Some((trait_name, self_type)) = parse_impl_header(tokens, i) else {
            continue;
        };
        if trait_name != "Governor" {
            continue;
        }
        let Some(type_name) = self_type else {
            continue; // blanket impl over a non-nominal self type
        };
        let documented = docs
            .get(&type_name)
            .is_some_and(|decls| decls.iter().any(|d| d.has_safety));
        if !documented {
            out.push(Violation {
                rule: "governor-doc",
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "`{type_name}` implements Governor but its declaration \
                     carries no safety argument; add a doc comment with a \
                     `Deadline safety:` (or `# Safety`) section explaining \
                     why its speed choices cannot cause a miss"
                ),
            });
        }
    }
    out
}

/// Doc-comment text immediately preceding the item keyword at `kw`
/// (walking back over attributes and visibility).
fn leading_docs(tokens: &[Token], kw: usize) -> String {
    let mut text = String::new();
    let mut i = kw;
    while i > 0 {
        i -= 1;
        match &tokens[i].kind {
            TokenKind::DocComment(doc) => {
                text.push_str(doc);
                text.push('\n');
            }
            TokenKind::Ident(w) if w == "pub" => {}
            // `pub(crate)` visibility parens.
            TokenKind::Close(')') => {
                let mut depth = 1usize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match tokens[i].kind {
                        TokenKind::Close(_) => depth += 1,
                        TokenKind::Open(_) => depth -= 1,
                        _ => {}
                    }
                }
            }
            // Attributes: `#[...]`.
            TokenKind::Close(']') => {
                let mut depth = 1usize;
                while i > 0 && depth > 0 {
                    i -= 1;
                    match tokens[i].kind {
                        TokenKind::Close(_) => depth += 1,
                        TokenKind::Open(_) => depth -= 1,
                        _ => {}
                    }
                }
                if i > 0 && tokens[i - 1].kind.is_punct("#") {
                    i -= 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    text
}

fn states_safety(doc: &str) -> bool {
    let lower = doc.to_ascii_lowercase();
    lower.contains("safety") || lower.contains("deadline-safe") || lower.contains("deadline safe")
}

/// Parses `impl [<generics>] TraitPath for SelfType [where ...] {`.
/// Returns the trait path's final segment and, when the self type is a
/// plain (possibly path-qualified) identifier, its final segment.
fn parse_impl_header(tokens: &[Token], impl_idx: usize) -> Option<(String, Option<String>)> {
    let mut i = impl_idx + 1;
    // Skip the generic parameter list if present.
    if tokens.get(i)?.kind.is_punct("<") {
        i = skip_angles(tokens, i)?;
    }
    // Collect the trait path up to `for` (inherent impls have no `for` and
    // hit `{` first — not our concern).
    let mut trait_last = None;
    let mut angle = 0isize;
    loop {
        let tok = tokens.get(i)?;
        match &tok.kind {
            TokenKind::Ident(w) if w == "for" && angle == 0 => {
                i += 1;
                break;
            }
            TokenKind::Open('{') if angle == 0 => return None, // inherent impl
            TokenKind::Ident(w) if angle == 0 => trait_last = Some(w.clone()),
            TokenKind::Punct("<") => angle += 1,
            TokenKind::Punct(">") => angle -= 1,
            TokenKind::Punct("<<") => angle += 2,
            TokenKind::Punct(">>") => angle -= 2,
            _ => {}
        }
        i += 1;
    }
    let trait_name = trait_last?;
    // Self type: tokens until `where` or `{` at depth 0.
    let mut segs: Vec<String> = Vec::new();
    let mut nominal = true;
    let mut angle = 0isize;
    loop {
        let tok = tokens.get(i)?;
        match &tok.kind {
            TokenKind::Open('{') if angle == 0 => break,
            TokenKind::Ident(w) if w == "where" && angle == 0 => break,
            TokenKind::Ident(w) if angle == 0 => segs.push(w.clone()),
            TokenKind::Punct("::") if angle == 0 => {}
            TokenKind::Punct("<") => {
                angle += 1;
                nominal = false; // generic self type (Box<G>, Vec<T>, ...)
            }
            TokenKind::Punct(">") => angle -= 1,
            TokenKind::Punct("<<") => {
                angle += 2;
                nominal = false;
            }
            TokenKind::Punct(">>") => angle -= 2,
            _ => nominal = false, // `&`, `mut`, tuples, slices, ...
        }
        i += 1;
    }
    let self_type = if nominal { segs.pop() } else { None };
    Some((trait_name, self_type))
}

/// Skips a balanced `<...>` starting at `open` (which must be `<`),
/// returning the index just past the matching `>`.
fn skip_angles(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut i = open;
    loop {
        match tokens.get(i)?.kind {
            TokenKind::Punct("<") => depth += 1,
            TokenKind::Punct(">") => depth -= 1,
            TokenKind::Punct("<<") => depth += 2,
            TokenKind::Punct(">>") => depth -= 2,
            _ => {}
        }
        i += 1;
        if depth == 0 {
            return Some(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let mut docs = TypeDocs::new();
        collect_type_docs("f.rs", &lexed.tokens, &mask, &mut docs);
        check_governor_doc("f.rs", &lexed.tokens, &mask, &docs)
    }

    #[test]
    fn undocumented_governor_is_flagged() {
        let v = run("pub struct Bare;\nimpl Governor for Bare { }");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("Bare"));
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn safety_section_satisfies_the_rule() {
        let v = run(
            "/// Runs at full speed.\n///\n/// Deadline safety: never slower than no-DVS.\npub struct Doc;\nimpl Governor for Doc { }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn doc_without_safety_is_flagged() {
        let v = run("/// A speed picker.\npub struct Vague;\nimpl Governor for Vague { }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn blanket_impls_are_skipped() {
        let v = run(
            "impl<G: Governor + ?Sized> Governor for &mut G { }\nimpl<G: Governor + ?Sized> Governor for Box<G> { }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn docs_survive_attributes_and_visibility() {
        let v = run(
            "/// Deadline safety: certified allowance.\n#[derive(Debug, Clone)]\npub(crate) struct Attr;\nimpl Governor for Attr { }",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn generic_impl_header_parses() {
        let v = run("pub struct Gen;\nimpl<'a, T: Clone> Governor for Gen { }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn other_traits_are_ignored() {
        assert!(run("pub struct S;\nimpl Display for S { }\nimpl S { }").is_empty());
    }

    #[test]
    fn path_qualified_trait_matches() {
        let v = run("pub struct P;\nimpl stadvs_sim::Governor for P { }");
        assert_eq!(v.len(), 1);
    }
}
