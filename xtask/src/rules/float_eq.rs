//! Rule `float-eq`: no raw `==`/`!=` on floating-point time/speed/energy
//! quantities.
//!
//! Exact equality on the simulator's continuous quantities is almost always
//! a latent bug: times, speeds, energies and claims are accumulated through
//! floating-point arithmetic, so semantically-equal values differ in the
//! last bits. Comparisons must go through the sanctioned epsilon helpers
//! (`TIME_EPS`/`WORK_EPS` based) or the explicit operating-point identity
//! `Speed::same_point`.
//!
//! Detection is lexical: an `==`/`!=` is flagged when either operand window
//! contains a float literal or an identifier whose snake-case words include
//! a known continuous-quantity vocabulary term (`speed`, `deadline`,
//! `energy`, ...). Identifier-name heuristics can misfire on integer
//! quantities that reuse the vocabulary; such sites take a justified
//! `// xtask:allow(float-eq): <reason>` instead of weakening the rule.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;

use super::{left_window, right_window};

/// Snake-case words that name continuous (floating-point) quantities in
/// this codebase. Matching any word of an identifier marks the operand as
/// float-suspect.
const FLOAT_VOCAB: &[&str] = &[
    "time",
    "now",
    "deadline",
    "deadlines",
    "release",
    "horizon",
    "slack",
    "speed",
    "speeds",
    "energy",
    "wcet",
    "bcet",
    "budget",
    "phase",
    "period",
    "periods",
    "ratio",
    "ratios",
    "latency",
    "amount",
    "work",
    "demand",
    "util",
    "utilization",
    "density",
    "intensity",
    "completion",
    "tag",
    "eps",
    "epsilon",
    "allowance",
    "elapsed",
    "executed",
    "remaining",
    "duration",
    "window",
    "margin",
    "claim",
    "claims",
    "banked",
    "fraction",
    "joules",
];

/// Runs the rule over one file's tokens. `mask[i]` marks test-only tokens.
pub fn check_float_eq(file: &str, tokens: &[Token], mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let op = match tok.kind {
            TokenKind::Punct(p @ ("==" | "!=")) => p,
            _ => continue,
        };
        let left = left_window(tokens, i);
        let right = right_window(tokens, i);
        let evidence = float_evidence(tokens, &left).or_else(|| float_evidence(tokens, &right));
        if let Some(why) = evidence {
            out.push(Violation {
                rule: "float-eq",
                file: file.to_string(),
                line: tok.line,
                col: tok.col,
                message: format!(
                    "raw `{op}` on a floating-point quantity ({why}); compare \
                     through an epsilon helper (TIME_EPS/WORK_EPS) or \
                     Speed::same_point, or justify with \
                     `// xtask:allow(float-eq): <reason>`"
                ),
            });
        }
    }
    out
}

/// Why an operand window looks float-typed, if it does.
fn float_evidence(tokens: &[Token], window: &[usize]) -> Option<String> {
    for &i in window {
        match &tokens[i].kind {
            TokenKind::Float(text) => return Some(format!("float literal `{text}`")),
            TokenKind::Ident(name) => {
                if let Some(word) = name
                    .split('_')
                    .find(|w| FLOAT_VOCAB.contains(&w.to_ascii_lowercase().as_str()))
                {
                    return Some(format!("identifier `{name}` (term `{word}`)"));
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        check_float_eq("f.rs", &lexed.tokens, &mask)
    }

    #[test]
    fn flags_vocabulary_identifiers() {
        let v = run("fn f() { if speed != current_speed { x(); } }");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("speed"));
    }

    #[test]
    fn flags_float_literals() {
        let v = run("fn f() { let a = self.latency == 0.0; }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ignores_integer_comparisons() {
        assert!(run("fn f() { if count == 0 && kind != other.kind { x(); } }").is_empty());
    }

    #[test]
    fn ignores_test_code() {
        assert!(run("#[cfg(test)]\nmod tests { fn t() { assert!(speed == 0.5); } }").is_empty());
    }

    #[test]
    fn epsilon_comparisons_pass() {
        assert!(run("fn f() -> bool { (a - deadline).abs() <= TIME_EPS }").is_empty());
    }

    #[test]
    fn operators_inside_strings_do_not_count() {
        assert!(run(r#"fn f() { let s = "speed == 0.5"; }"#).is_empty());
    }
}
