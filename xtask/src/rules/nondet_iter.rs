//! Rule `nondet-iter`: no iteration over `HashMap`/`HashSet` in the
//! determinism-bound crates.
//!
//! The repo's hard guarantee is enforced through bit-identity: golden
//! traces, the from-scratch demand oracle and the differential harnesses
//! all assume a run is reproducible to the last f64 bit. `HashMap`
//! iteration order depends on the per-process `RandomState` seed, so any
//! hash-ordered loop that feeds event sequences, energy accounting or CSV
//! rows breaks that discipline silently — the code is correct on every
//! single run and irreproducible across runs. Keyed access (`get`,
//! `entry`, `remove`) is fine; it is *enumeration* that leaks the order.
//!
//! Detection is dataflow-based (see [`crate::syntax`]): a binding is
//! hash-typed when its `let`/field/param annotation or constructor RHS
//! resolves (through `use` aliases) to a hash container, and iteration is
//! either a `for .. in` over that binding or an order-producing method
//! call (`iter`, `keys`, `values`, `drain`, ...) on it. Fix by switching
//! to `BTreeMap`/`BTreeSet`/`Vec`, or sort the drained pairs before use —
//! or justify with `// xtask:allow(nondet-iter): <reason>`.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::syntax::{receiver_root, FileSyntax};

/// Containers whose iteration order is seed-dependent.
const HASH_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "FxHashMap",
    "FxHashSet",
    "AHashMap",
    "AHashSet",
];

/// Methods that enumerate a container in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Whether `ty` (a canonical type head) is a hash container.
pub fn is_hash_type(ty: &str) -> bool {
    HASH_TYPES.contains(&ty)
}

pub fn check_nondet_iter(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    syn: &FileSyntax,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || syn.use_mask[i] {
            continue;
        }
        match &tok.kind {
            // `for pat in <expr> {` where <expr> is a plain path ending in
            // a hash-typed name.
            TokenKind::Ident(w) if w == "for" => {
                if let Some((name, idx)) = for_loop_root(tokens, i) {
                    if hash_ty(syn, &name, idx).is_some() {
                        push(&mut out, file, &tokens[idx], &name, syn, idx);
                    }
                }
            }
            // `<recv>.method()` for an order-producing method.
            TokenKind::Ident(m) if ITER_METHODS.contains(&m.as_str()) => {
                let called = tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Open('('));
                let dot = i.checked_sub(1);
                let dotted = dot.is_some_and(|d| tokens[d].kind.is_punct("."));
                if !called || !dotted {
                    continue;
                }
                if let Some((name, _)) = receiver_root(tokens, dot.unwrap_or(0)) {
                    if hash_ty(syn, &name, i).is_some() {
                        push(&mut out, file, tok, &name, syn, i);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

fn hash_ty<'a>(syn: &'a FileSyntax, name: &str, idx: usize) -> Option<&'a str> {
    syn.binding_ty_at(name, idx).filter(|ty| is_hash_type(ty))
}

fn push(
    out: &mut Vec<Violation>,
    file: &str,
    tok: &Token,
    name: &str,
    syn: &FileSyntax,
    idx: usize,
) {
    let ty = hash_ty(syn, name, idx).unwrap_or("HashMap");
    out.push(Violation {
        rule: "nondet-iter",
        file: file.to_string(),
        line: tok.line,
        col: tok.col,
        message: format!(
            "iterating `{name}` ({ty}) — hash iteration order is seeded per \
             process and leaks into event sequences, energy sums and CSVs; \
             use BTreeMap/BTreeSet/Vec or sort before iterating, or justify \
             with `// xtask:allow(nondet-iter): <reason>`"
        ),
    });
}

/// For `for pat in expr {`, returns the root name of `expr` when it is a
/// plain (possibly borrowed / `self.`-qualified) path: the token index
/// returned anchors the violation. Method-call iterables (`m.keys()`) are
/// handled by the method arm instead.
fn for_loop_root(tokens: &[Token], for_idx: usize) -> Option<(String, usize)> {
    // Find `in` at depth 0, then the body `{` at depth 0.
    let mut depth = 0usize;
    let mut in_idx = None;
    for (j, t) in tokens.iter().enumerate().skip(for_idx + 1) {
        match &t.kind {
            TokenKind::Open('{') if depth == 0 => break,
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => depth = depth.checked_sub(1)?,
            TokenKind::Ident(w) if depth == 0 && w == "in" => {
                in_idx = Some(j);
                break;
            }
            TokenKind::Punct(";") if depth == 0 => return None,
            _ => {}
        }
    }
    let in_idx = in_idx?;
    let mut body = None;
    for (j, t) in tokens.iter().enumerate().skip(in_idx + 1) {
        match &t.kind {
            TokenKind::Open('{') if depth == 0 => {
                body = Some(j);
                break;
            }
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => depth = depth.checked_sub(1)?,
            TokenKind::Punct(";") if depth == 0 => return None,
            _ => {}
        }
    }
    let body = body?;
    // The iterable must be only `&`, `mut`, `self`, `.` and identifiers.
    let mut root: Option<(String, usize)> = None;
    for (j, t) in tokens.iter().enumerate().take(body).skip(in_idx + 1) {
        match &t.kind {
            TokenKind::Ident(w) if w == "mut" || w == "self" => {}
            TokenKind::Ident(n) => root = Some((n.clone(), j)),
            TokenKind::Punct("&") | TokenKind::Punct(".") => {}
            _ => return None, // calls, indexing, ranges: not a plain path
        }
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;
    use crate::syntax;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let syn = syntax::parse(&lexed.tokens);
        check_nondet_iter("f.rs", &lexed.tokens, &mask, &syn)
    }

    const PRELUDE: &str = "use std::collections::{HashMap, HashSet};\n";

    #[test]
    fn flags_for_loop_over_hash_field() {
        let src = format!(
            "{PRELUDE}struct S {{ granted: HashMap<u64, f64> }}\n\
             impl S {{ fn f(&self) {{ for (k, v) in &self.granted {{ use_it(k, v); }} }} }}"
        );
        let v = run(&src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("granted"));
    }

    #[test]
    fn flags_order_methods_on_hash_bindings() {
        let src = format!(
            "{PRELUDE}fn f() {{ let m: HashMap<u32, f64> = HashMap::new(); \
             let a: f64 = m.values().count(); let b = m.keys().max(); m.drain(); }}"
        );
        let v = run(&src);
        assert_eq!(v.len(), 3, "{v:?}");
    }

    #[test]
    fn keyed_access_is_not_iteration() {
        let src = format!(
            "{PRELUDE}fn f() {{ let mut m: HashMap<u32, f64> = HashMap::new(); \
             m.entry(1).or_insert(0.0); m.remove(&1); m.clear(); m.get(&1); }}"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn btree_iteration_is_fine() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, f64>) { for v in m.values() { go(v); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn alias_resolution_still_catches_hash_maps() {
        let src = "use std::collections::HashMap as Map;\n\
                   fn f() { let m: Map<u32, f64> = Map::new(); for k in m.keys() { go(k); } }";
        let v = run(src);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn inner_shadow_with_ordered_type_is_fine() {
        let src = format!(
            "{PRELUDE}fn f() {{ let m: HashMap<u32, u32> = HashMap::new(); \
             {{ let m: Vec<u32> = to_sorted(m); for x in &m {{ go(x); }} }} }}"
        );
        assert!(run(&src).is_empty());
    }

    #[test]
    fn unknown_receivers_are_not_flagged() {
        let src = "fn f(m: &Registry) { for x in m.keys() { go(x); } }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_masked() {
        let src = format!(
            "{PRELUDE}#[cfg(test)]\nmod t {{ fn f(m: &HashMap<u32, u32>) {{ \
             for k in m.keys() {{ go(k); }} }} }}"
        );
        assert!(run(&src).is_empty());
    }
}
