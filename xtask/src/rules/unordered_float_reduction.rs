//! Rule `unordered-float-reduction`: no `.sum()`/`.fold()`/`.reduce()`/
//! `.product()` over unordered or parallel iterators in the
//! determinism-bound crates.
//!
//! f64 addition is not associative: summing the same multiset of energies
//! in two different orders produces two different last bits, and the
//! bit-identity harnesses (golden traces, the from-scratch demand oracle,
//! `BENCH_sim.json` gates) treat that as a regression. An iterator is
//! *unordered* here when its chain is rooted in a hash container
//! (`values()`, `keys()`, `iter()` on a `HashMap`/`HashSet`-typed
//! binding) or goes parallel (`par_iter`, `into_par_iter`, `par_bridge`
//! from rayon — the planned fleet-sweep engine is exactly where this rule
//! must already be standing).
//!
//! Escapes: reductions with an *integer* turbofish (`sum::<u64>()`) are
//! associative and exempt; folds/reduces whose operator is a pure
//! min/max are order-insensitive and exempt; everything else must either
//! impose an order first (collect + stable sort, or the order-stable
//! accumulation helpers in `stadvs-analysis`) or carry
//! `// xtask:allow(unordered-float-reduction): <reason>`.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::rules::nondet_iter::is_hash_type;
use crate::syntax::{chain_info, FileSyntax};

/// Terminal reduction methods whose result depends on operand order.
const REDUCTIONS: &[&str] = &["sum", "product", "fold", "reduce"];

/// Chain methods that make the stream parallel (rayon).
const PARALLEL_SOURCES: &[&str] = &["par_iter", "par_iter_mut", "into_par_iter", "par_bridge"];

/// Chain methods that enumerate a hash container in storage order.
const HASH_SOURCES: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];

/// Integer turbofish types whose reductions are associative.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

pub fn check_unordered_float_reduction(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    syn: &FileSyntax,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let method = match &tok.kind {
            TokenKind::Ident(m) if REDUCTIONS.contains(&m.as_str()) => m.as_str(),
            _ => continue,
        };
        // Must be a method call: `.m(` or `.m::<T>(`.
        if !i
            .checked_sub(1)
            .is_some_and(|d| tokens[d].kind.is_punct("."))
        {
            continue;
        }
        let args_open = match call_open(tokens, i) {
            Some(o) => o,
            None => continue,
        };

        let (methods, root) = chain_info(tokens, i);
        let parallel = methods
            .iter()
            .any(|m| PARALLEL_SOURCES.contains(&m.as_str()));
        let hash_rooted = root.as_deref().is_some_and(|r| {
            methods.iter().any(|m| HASH_SOURCES.contains(&m.as_str()))
                && syn.binding_ty_at(r, i).is_some_and(is_hash_type)
        });
        if !parallel && !hash_rooted {
            continue;
        }

        // Integer turbofish → associative → exempt.
        if let Some(ty) = turbofish_ty(tokens, i) {
            if INT_TYPES.contains(&ty.as_str()) {
                continue;
            }
        }
        // min/max operator → order-insensitive → exempt.
        if matches!(method, "fold" | "reduce") && args_are_min_max(tokens, args_open) {
            continue;
        }

        let source = if parallel {
            "a parallel iterator"
        } else {
            "a hash container"
        };
        out.push(Violation {
            rule: "unordered-float-reduction",
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`.{method}(..)` over {source} — f64 accumulation is \
                 order-sensitive and this order is nondeterministic; impose a \
                 stable order first (collect + sort, or the order-stable \
                 accumulation helpers), annotate an integer turbofish if the \
                 sum is integral, or justify with \
                 `// xtask:allow(unordered-float-reduction): <reason>`"
            ),
        });
    }
    out
}

/// The `(` of the call at method ident `i`, skipping a turbofish.
fn call_open(tokens: &[Token], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.kind.is_punct("::")) {
        // `::<T>` — skip the angle group (lexer may fuse `>>`).
        j += 1;
        let mut angle = 0isize;
        loop {
            match tokens.get(j).map(|t| &t.kind) {
                Some(TokenKind::Punct("<")) => angle += 1,
                Some(TokenKind::Punct("<<")) => angle += 2,
                Some(TokenKind::Punct(">")) => angle -= 1,
                Some(TokenKind::Punct(">>")) => angle -= 2,
                None => return None,
                _ => {}
            }
            j += 1;
            if angle <= 0 {
                break;
            }
        }
    }
    (tokens.get(j).map(|t| &t.kind) == Some(&TokenKind::Open('('))).then_some(j)
}

/// The single type name inside a `::<T>` turbofish at method ident `i`.
fn turbofish_ty(tokens: &[Token], i: usize) -> Option<String> {
    if !tokens.get(i + 1).is_some_and(|t| t.kind.is_punct("::")) {
        return None;
    }
    if !tokens.get(i + 2).is_some_and(|t| t.kind.is_punct("<")) {
        return None;
    }
    match tokens.get(i + 3).map(|t| &t.kind) {
        Some(TokenKind::Ident(ty)) => Some(ty.clone()),
        _ => None,
    }
}

/// Whether the call's arguments name `min`/`max` as the reducing
/// operator (`fold(f64::INFINITY, f64::min)`, `reduce(f64::max)`, or a
/// `|a, b| a.min(b)` closure) — those are order-insensitive.
fn args_are_min_max(tokens: &[Token], open: usize) -> bool {
    let close = match crate::rules::matching_close(tokens, open) {
        Some(c) => c,
        None => return false,
    };
    tokens[open + 1..close]
        .iter()
        .any(|t| t.kind.is_ident("min") || t.kind.is_ident("max"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;
    use crate::syntax;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let syn = syntax::parse(&lexed.tokens);
        check_unordered_float_reduction("f.rs", &lexed.tokens, &mask, &syn)
    }

    #[test]
    fn flags_sum_over_hash_values() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }";
        let v = run(src);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("hash container"));
    }

    #[test]
    fn flags_parallel_sum_and_fold() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|x| x * x).sum::<f64>() \
                   + xs.par_iter().fold(0.0, |a, b| a + b) }";
        let v = run(src);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].message.contains("parallel"));
    }

    #[test]
    fn ordered_slice_sum_is_fine() {
        let src = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
        assert!(run(src).is_empty(), "slice iteration is ordered");
    }

    #[test]
    fn integer_turbofish_is_exempt() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u64>) -> u64 { m.values().sum::<u64>() }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn min_max_fold_is_exempt() {
        let src =
            "fn f(xs: &[f64]) -> f64 { xs.par_iter().copied().fold(f64::INFINITY, f64::min) }";
        assert!(run(src).is_empty());
        let src = "fn g(xs: &[f64]) -> Option<f64> { xs.par_iter().copied().reduce(f64::max) }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn untyped_float_sum_over_hash_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 { let t: f64 = m.values().sum(); t }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn hash_sum_through_map_chain_is_flagged() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 { m.values().map(|v| v * 2.0).sum::<f64>() }";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn fold_on_btree_is_fine() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, f64>) -> f64 { m.values().fold(0.0, |a, b| a + b) }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_is_masked() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod t {\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() } }";
        assert!(run(src).is_empty());
    }
}
