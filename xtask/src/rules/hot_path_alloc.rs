//! Rule `hot-path-alloc`: no fresh heap allocations inside loop bodies of
//! the simulator crate (`crates/sim`) and of the per-dispatch analysis
//! files in `core` (`sources/demand.rs`, `slack_edf.rs`) — see
//! `HOT_PATH_FILES` in `lint.rs` for the exact scope.
//!
//! The dispatch loop runs once per simulated event — and the
//! multiprocessor engine's per-core stepping loop (`platform_sim.rs`)
//! multiplies that by the core count — while the whole experiment suite
//! is a fan-out of millions of events; an allocation per
//! event dwarfs the O(log n) queue work the engine budgets for. Buffers
//! are pre-sized at construction and reused via `SimScratch` — an
//! allocating call (`Vec::new`, `vec![]`, `clone()`, `collect()`, ...)
//! inside a `loop`/`while`/`for` body is either a regression or a
//! deliberate cold path that must carry
//! `// xtask:allow(hot-path-alloc): <reason>`.

use crate::lexer::{Token, TokenKind};
use crate::report::Violation;
use crate::rules::matching_close;

/// Macros that allocate on every expansion.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods that allocate when called (method position, `.name(`).
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_string", "to_owned", "collect"];

/// Type constructors that allocate (`Type::name(`).
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("Box", "new"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
    ("BinaryHeap", "new"),
];

/// Runs the rule over one file's tokens. `mask[i]` marks test-only tokens.
pub fn check_hot_path_alloc(file: &str, tokens: &[Token], mask: &[bool]) -> Vec<Violation> {
    let in_loop = loop_body_mask(tokens);
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || !in_loop[i] {
            continue;
        }
        let name = match &tok.kind {
            TokenKind::Ident(n) => n.as_str(),
            _ => continue,
        };
        let prev = i.checked_sub(1).map(|p| &tokens[p].kind);
        let next = tokens.get(i + 1).map(|t| &t.kind);
        let called = next.is_some_and(|k| *k == TokenKind::Open('('));
        let what = if ALLOC_MACROS.contains(&name) && next.is_some_and(|k| k.is_punct("!")) {
            format!("{name}!")
        } else if ALLOC_METHODS.contains(&name) && called && prev.is_some_and(|k| k.is_punct(".")) {
            format!(".{name}()")
        } else if called
            && prev.is_some_and(|k| k.is_punct("::"))
            && i >= 2
            && ALLOC_CTORS
                .iter()
                .any(|(ty, m)| *m == name && tokens[i - 2].kind.is_ident(ty))
        {
            match &tokens[i - 2].kind {
                TokenKind::Ident(ty) => format!("{ty}::{name}()"),
                _ => continue,
            }
        } else {
            continue;
        };
        out.push(Violation {
            rule: "hot-path-alloc",
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            message: format!(
                "`{what}` allocates inside a simulator loop body; hoist the \
                 buffer into the owning struct or `SimScratch` and reuse it, \
                 or justify with `// xtask:allow(hot-path-alloc): <reason>`"
            ),
        });
    }
    out
}

/// For each token, whether it lies inside the body of a `loop`, `while` or
/// `for` (at any nesting depth).
///
/// The body brace is found by scanning from the keyword to the first `{`
/// while skipping nested delimiter groups in the loop header. `for` is
/// only a loop when an `in` appears at header depth 0 before the body —
/// this rules out `impl Trait for Type` and `for<'a>` bounds.
fn loop_body_mask(tokens: &[Token]) -> Vec<bool> {
    let mut in_loop = vec![false; tokens.len()];
    for (i, tok) in tokens.iter().enumerate() {
        let keyword = match &tok.kind {
            TokenKind::Ident(n) => n.as_str(),
            _ => continue,
        };
        if !matches!(keyword, "loop" | "while" | "for") {
            continue;
        }
        // Find the body `{` at header depth 0.
        let mut depth = 0usize;
        let mut saw_in = false;
        let mut body_open = None;
        for (j, t) in tokens.iter().enumerate().skip(i + 1) {
            match &t.kind {
                TokenKind::Open('{') if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                TokenKind::Open(_) => depth += 1,
                TokenKind::Close(_) => match depth.checked_sub(1) {
                    Some(d) => depth = d,
                    None => break, // header ended (e.g. `for` in a bound)
                },
                TokenKind::Ident(w) if depth == 0 && w == "in" => saw_in = true,
                TokenKind::Punct(";") if depth == 0 => break,
                _ => {}
            }
        }
        let Some(open) = body_open else { continue };
        if keyword == "for" && !saw_in {
            continue; // `impl Trait for Type` / `for<'a>` bound
        }
        if let Some(close) = matching_close(tokens, open) {
            for flag in in_loop.iter_mut().take(close).skip(open + 1) {
                *flag = true;
            }
        }
    }
    in_loop
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_mask;

    fn run(src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        check_hot_path_alloc("f.rs", &lexed.tokens, &mask)
    }

    #[test]
    fn flags_alloc_calls_inside_loops() {
        let v = run("fn f() { loop { let v = Vec::new(); let w = x.clone(); } }");
        assert_eq!(v.len(), 2);
        assert!(v[0].message.contains("Vec::new()"));
        assert!(v[1].message.contains(".clone()"));
    }

    #[test]
    fn flags_macros_and_collect_in_while_and_for() {
        let v = run("fn f() { while go() { let v = vec![1]; } \
             for x in xs { let s: Vec<_> = it.collect(); let t = format!(\"{x}\"); } }");
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn ignores_allocations_outside_loops() {
        assert!(run("fn f() { let v = Vec::new(); let w = x.clone(); }").is_empty());
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        assert!(run("impl Governor for NoDvs { fn f(&self) { let v = Vec::new(); } }").is_empty());
    }

    #[test]
    fn hrtb_for_is_not_a_loop() {
        assert!(run("fn f(g: impl for<'a> Fn(&'a str)) { let v = Vec::new(); }").is_empty());
    }

    #[test]
    fn nested_blocks_inside_loops_are_covered() {
        let v = run("fn f() { for x in xs { if c { let v = x.to_vec(); } } }");
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn clone_as_plain_fn_or_field_is_not_flagged() {
        assert!(run("fn f() { loop { let c = clone; g(clone(x)); } }").is_empty());
    }

    #[test]
    fn ignores_test_code() {
        assert!(run("#[cfg(test)]\nmod t { fn f() { loop { let v = Vec::new(); } } }").is_empty());
    }
}
