//! The domain rules, implemented over the token stream — plus the
//! determinism rules, implemented over the [`crate::syntax`] layer.
//!
//! Shared infrastructure lives here: `#[cfg(test)]` / `#[test]` masking,
//! delimiter matching, and operand-window extraction for the comparison
//! rule.

mod as_cast;
mod fault_policy;
mod float_eq;
mod governor_doc;
mod hot_path_alloc;
mod no_panic;
pub(crate) mod nondet_iter;
mod shared_mut_state;
mod unordered_float_reduction;
mod unseeded_rng;
mod wall_clock;

pub use as_cast::check_as_cast;
pub use fault_policy::check_fault_policy;
pub use float_eq::check_float_eq;
pub use governor_doc::{check_governor_doc, collect_type_docs, TypeDocs};
pub use hot_path_alloc::check_hot_path_alloc;
pub use no_panic::check_no_panic;
pub use nondet_iter::check_nondet_iter;
pub use shared_mut_state::check_shared_mut_state;
pub use unordered_float_reduction::check_unordered_float_reduction;
pub use unseeded_rng::check_unseeded_rng;
pub use wall_clock::check_wall_clock;

use crate::lexer::{Token, TokenKind};

/// Static description of a rule, for `--list-rules` and allow validation.
pub struct RuleInfo {
    pub name: &'static str,
    pub summary: &'static str,
}

/// Every rule the linter knows, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        name: "float-eq",
        summary: "no raw ==/!= on floating-point time/speed/energy values; \
                  use the TIME_EPS/WORK_EPS helpers or Speed::same_point",
    },
    RuleInfo {
        name: "no-panic",
        summary: "no unwrap()/expect()/panic!() in non-test library code of \
                  the guarantee-critical crates (sim, core, power, analysis); \
                  return typed errors or use debug_assert!",
    },
    RuleInfo {
        name: "governor-doc",
        summary: "every type implementing Governor must carry a doc comment \
                  naming its safety argument (a `Safety` section)",
    },
    RuleInfo {
        name: "as-cast",
        summary: "no `as` casts between integer and float in claims/ledger \
                  arithmetic (crates/core); use the checked stadvs_core::num \
                  helpers or lossless From conversions",
    },
    RuleInfo {
        name: "fault-policy-exhaustive",
        summary: "every `match` on an OverrunPolicy value in the \
                  guarantee-critical crates must name all variants — no `_` \
                  or catch-all binding arm; a new overrun policy must force \
                  a decision at every dispatch site",
    },
    RuleInfo {
        name: "hot-path-alloc",
        summary: "no fresh heap allocations (Vec::new, vec!, clone(), \
                  collect(), ...) inside loop bodies of the simulator crate \
                  (crates/sim); hoist buffers into SimScratch and reuse them",
    },
    RuleInfo {
        name: "nondet-iter",
        summary: "no iteration over HashMap/HashSet in the \
                  determinism-bound crates — hash order is seeded per \
                  process and leaks into event sequences and CSVs; use \
                  BTreeMap/BTreeSet/Vec or sort before iterating",
    },
    RuleInfo {
        name: "unordered-float-reduction",
        summary: "no .sum()/.fold()/.reduce()/.product() over unordered \
                  (hash-rooted) or parallel iterators in the \
                  determinism-bound crates — f64 accumulation is \
                  order-sensitive; impose a stable order or use the \
                  order-stable accumulation helpers",
    },
    RuleInfo {
        name: "wall-clock-in-sim",
        summary: "no Instant::now()/SystemTime::now() in the \
                  determinism-bound crates — simulated time comes from the \
                  event queue; real timing belongs in crates/bench",
    },
    RuleInfo {
        name: "unseeded-rng",
        summary: "no thread_rng()/from_entropy()/OsRng/rand::random() \
                  outside xtask and the bench binaries — every random \
                  source must derive from an explicit u64 seed so runs \
                  replay bit-identically",
    },
    RuleInfo {
        name: "shared-mut-state",
        summary: "no `static mut` anywhere, and no lazily initialized \
                  globals (OnceLock, Lazy, lazy_static!, thread_local!) in \
                  the guarantee crates — thread state explicitly through \
                  constructors or scratch structs",
    },
];

/// Whether `name` is a known rule.
pub fn is_known_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// For each token, whether it lies inside test-only code: an item annotated
/// with an attribute whose arguments mention `test` (`#[cfg(test)]`,
/// `#[test]`, `#[cfg(any(test, ...))]`, ...). Conservative by construction:
/// masking too much only makes the lint quieter in test code, never louder
/// in shipping code.
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.is_punct("#")
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::Open('['))
        {
            let attr_end = match matching_close(tokens, i + 1) {
                Some(e) => e,
                None => break,
            };
            let mentions_test = tokens[i + 1..attr_end]
                .iter()
                .any(|t| t.kind.is_ident("test"));
            if mentions_test {
                if let Some(item_end) = item_end_after(tokens, attr_end + 1) {
                    for m in mask.iter_mut().take(item_end + 1).skip(i) {
                        *m = true;
                    }
                    i = item_end + 1;
                    continue;
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// The index of the last token of the item starting at `start` (skipping
/// further attributes and doc comments): either a terminating `;` or the
/// matching close of its first `{` block.
fn item_end_after(tokens: &[Token], start: usize) -> Option<usize> {
    let mut i = start;
    // Skip doc comments and further attributes between the attribute and
    // the item keyword.
    loop {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::DocComment(_)) => i += 1,
            Some(TokenKind::Punct("#"))
                if tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Open('[')) =>
            {
                i = matching_close(tokens, i + 1)? + 1;
            }
            _ => break,
        }
    }
    // Scan to the first top-level `;` or brace block.
    let mut depth = 0usize;
    while let Some(tok) = tokens.get(i) {
        match &tok.kind {
            TokenKind::Open('{') if depth == 0 => return matching_close(tokens, i),
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => depth = depth.saturating_sub(1),
            TokenKind::Punct(";") if depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the `Close` matching the `Open` at `open_idx`.
pub fn matching_close(tokens: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, tok) in tokens.iter().enumerate().skip(open_idx) {
        match tok.kind {
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// The operand window to the left of a binary operator at `op`: token
/// indices scanned backwards until an expression boundary at depth 0.
pub fn left_window(tokens: &[Token], op: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = op;
    while i > 0 {
        i -= 1;
        match &tokens[i].kind {
            TokenKind::Close(_) => depth += 1,
            TokenKind::Open(_) => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokenKind::Punct(p) if depth == 0 && is_boundary_punct(p) => break,
            TokenKind::Ident(w) if depth == 0 && is_boundary_keyword(w) => break,
            _ => {}
        }
        out.push(i);
    }
    out
}

/// The operand window to the right of a binary operator at `op`.
pub fn right_window(tokens: &[Token], op: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = op + 1;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Open('{') if depth == 0 => break, // if-body / block start
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokenKind::Punct(p) if depth == 0 && is_boundary_punct(p) => break,
            TokenKind::Ident(w) if depth == 0 && is_boundary_keyword(w) => break,
            _ => {}
        }
        out.push(i);
        i += 1;
    }
    out
}

fn is_boundary_punct(p: &str) -> bool {
    matches!(p, ";" | "," | "&&" | "||" | "=" | "=>" | "==" | "!=" | "?")
}

fn is_boundary_keyword(w: &str) -> bool {
    matches!(
        w,
        "if" | "while" | "match" | "return" | "let" | "else" | "for" | "in" | "loop"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.is_ident("unwrap"))
            .unwrap();
        let tail_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.is_ident("tail"))
            .unwrap();
        assert!(mask[unwrap_idx], "inside cfg(test) must be masked");
        assert!(!mask[tail_idx], "after the test mod must be unmasked");
        assert!(!mask[0], "before the test mod must be unmasked");
    }

    #[test]
    fn test_mask_covers_test_fn_attribute() {
        let src = "#[test]\nfn unit() { y.expect(\"x\"); }\nfn lib() {}\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let expect_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.is_ident("expect"))
            .unwrap();
        let lib_idx = lexed
            .tokens
            .iter()
            .position(|t| t.kind.is_ident("lib"))
            .unwrap();
        assert!(mask[expect_idx]);
        assert!(!mask[lib_idx]);
    }

    #[test]
    fn windows_respect_boundaries() {
        let lexed = lex("if a.b(c) == d && e { }");
        let op = lexed
            .tokens
            .iter()
            .position(|t| t.kind.is_punct("=="))
            .unwrap();
        let left: Vec<_> = left_window(&lexed.tokens, op);
        let right: Vec<_> = right_window(&lexed.tokens, op);
        // Left stops at `if`; right stops at `&&`.
        assert!(left.iter().all(|&i| !lexed.tokens[i].kind.is_ident("if")));
        assert!(left.iter().any(|&i| lexed.tokens[i].kind.is_ident("a")));
        assert!(left.iter().any(|&i| lexed.tokens[i].kind.is_ident("c")));
        assert_eq!(right.len(), 1);
        assert!(lexed.tokens[right[0]].kind.is_ident("d"));
    }
}
