//! Lint orchestration: workspace discovery, rule scoping, allow-list
//! application.
//!
//! Scope policy (library code only — integration tests, benches and
//! examples are exercised by the compiler and test suite, not by this
//! gate):
//!
//! * scanned roots: `crates/*/src`, `src`, `xtask/src`;
//! * `float-eq` and `governor-doc` run everywhere scanned;
//! * `no-panic` and `fault-policy-exhaustive` run in the
//!   guarantee-critical crates (`sim`, `core`, `power`, `analysis`,
//!   `baselines`);
//! * `as-cast` runs in `core` (the claims/ledger arithmetic);
//! * `hot-path-alloc` runs in `sim` (the per-event dispatch loops), in
//!   the per-dispatch analysis files `crates/core/src/sources/demand.rs`
//!   and `crates/core/src/slack_edf.rs`, and in the fleet engine's
//!   per-node shard loop `crates/fleet/src/engine.rs`;
//! * the determinism rules (`nondet-iter`, `unordered-float-reduction`,
//!   `wall-clock-in-sim`) run in the determinism-bound crates — everything
//!   that executes between workload generation and CSV aggregation;
//! * `unseeded-rng` runs everywhere except `xtask` and `bench` (the only
//!   places allowed to observe the host);
//! * `shared-mut-state` flags `static mut` everywhere scanned; its lazy
//!   global check is restricted to the guarantee-critical crates.
//!
//! A violation is suppressed by `// xtask:allow(<rule>): <reason>` on the
//! same or the immediately preceding line, or
//! `// xtask:allow-file(<rule>): <reason>` anywhere in the file. The
//! reason is mandatory; a directive without one is inert. Directives
//! naming unknown rules are themselves reported. Pre-existing debt is
//! recorded in the committed baseline file instead (see
//! [`crate::baseline`]).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, LexedFile};
use crate::report::{LintReport, Violation};
use crate::rules;
use crate::syntax::{self, FileSyntax};

/// Crates whose library code must be panic-free (rule `no-panic`).
/// `baselines` joined after its construction paths were swept clean:
/// comparison governors run inside the same simulations as the governor
/// under test, so a baseline panic also aborts the guarantee experiment.
const GUARANTEE_CRATES: &[&str] = &["sim", "core", "power", "analysis", "baselines"];

/// Crates subject to the `as-cast` rule.
const CLAIMS_CRATES: &[&str] = &["core"];

/// Crates subject to the `hot-path-alloc` rule: per-event code that the
/// experiment suite multiplies by millions of simulated events.
const HOT_PATH_CRATES: &[&str] = &["sim"];

/// Individual files outside [`HOT_PATH_CRATES`] that are also on the
/// per-dispatch path: the slack analysis and the st-edf governor run once
/// per dispatch, so a stray allocation there multiplies the same way.
/// One-time cache growth is fine — escape it with
/// `// xtask:allow(hot-path-alloc): <reason>`.
const HOT_PATH_FILES: &[&str] = &[
    "crates/core/src/sources/demand.rs",
    "crates/core/src/slack_edf.rs",
    "crates/fleet/src/engine.rs",
    // The kernel's per-event dispatch and queue live inside the `sim`
    // crate and are already covered by HOT_PATH_CRATES; they are pinned
    // here by name so the coverage survives any future re-scoping of the
    // crate-level list. `queue.rs` (dense ready/release sets) and
    // `component.rs` (the per-core facade with the SoA task table and the
    // batched release loop) joined when the hot path went data-oriented.
    "crates/sim/src/event.rs",
    "crates/sim/src/kernel.rs",
    "crates/sim/src/queue.rs",
    "crates/sim/src/component.rs",
];

/// Crates bound by the determinism contract (DESIGN.md §12): everything
/// whose behaviour feeds the bit-identity harnesses — the simulator and
/// its governors, the slack analysis, workload generation, the experiment
/// aggregation that writes golden-pinned CSVs, and the fleet sweep engine
/// (whose merged aggregates and checkpoints must be bit-identical across
/// thread counts). `cli` only parses arguments and prints; `bench` and
/// `xtask` measure the host on purpose.
const DETERMINISM_CRATES: &[&str] = &[
    "sim",
    "core",
    "power",
    "analysis",
    "baselines",
    "workload",
    "experiments",
    "fleet",
    "stadvs",
];

/// Crates exempt from `unseeded-rng`: the lint tooling itself and the
/// bench binaries (which may time and shuffle on the host).
const RNG_EXEMPT_CRATES: &[&str] = &["xtask", "bench"];

/// A scanned source file, lexed and classified.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The owning crate's directory name (`sim`, `core`, ... or `stadvs`
    /// for the root package, `xtask` for the tool itself).
    pub crate_name: String,
    pub lexed: LexedFile,
    pub mask: Vec<bool>,
    /// The syntactic index (use-resolution, scoped type bindings) the
    /// dataflow determinism rules run on.
    pub syn: FileSyntax,
}

impl SourceFile {
    /// Lexes `src` as the file `rel` belonging to `crate_name` — the entry
    /// point used by fixture tests.
    pub fn from_source(rel: &str, crate_name: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let mask = rules::test_mask(&lexed.tokens);
        let syn = syntax::parse(&lexed.tokens);
        SourceFile {
            rel: rel.to_string(),
            crate_name: crate_name.to_string(),
            lexed,
            mask,
            syn,
        }
    }
}

/// Lints the workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`).
pub fn lint_workspace(root: &Path) -> io::Result<LintReport> {
    let files = discover(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = relative(root, &path);
        let crate_name = classify(&rel);
        sources.push(SourceFile::from_source(&rel, &crate_name, &text));
    }
    Ok(analyze(&sources))
}

/// Runs every applicable rule over the given sources and applies the
/// allow-lists. Pure (no I/O) — fixture tests call this directly.
pub fn analyze(sources: &[SourceFile]) -> LintReport {
    let mut violations = Vec::new();

    // governor-doc needs the cross-file declaration index first.
    let mut docs = rules::TypeDocs::new();
    for s in sources {
        rules::collect_type_docs(&s.rel, &s.lexed.tokens, &s.mask, &mut docs);
    }

    for s in sources {
        let krate = s.crate_name.as_str();
        let mut found = Vec::new();
        found.extend(rules::check_float_eq(&s.rel, &s.lexed.tokens, &s.mask));
        found.extend(rules::check_governor_doc(
            &s.rel,
            &s.lexed.tokens,
            &s.mask,
            &docs,
        ));
        if GUARANTEE_CRATES.contains(&krate) {
            found.extend(rules::check_no_panic(&s.rel, &s.lexed.tokens, &s.mask));
            found.extend(rules::check_fault_policy(&s.rel, &s.lexed.tokens, &s.mask));
        }
        if CLAIMS_CRATES.contains(&krate) {
            found.extend(rules::check_as_cast(&s.rel, &s.lexed.tokens, &s.mask));
        }
        if HOT_PATH_CRATES.contains(&krate) || HOT_PATH_FILES.contains(&s.rel.as_str()) {
            found.extend(rules::check_hot_path_alloc(
                &s.rel,
                &s.lexed.tokens,
                &s.mask,
            ));
        }
        if DETERMINISM_CRATES.contains(&krate) {
            found.extend(rules::check_nondet_iter(
                &s.rel,
                &s.lexed.tokens,
                &s.mask,
                &s.syn,
            ));
            found.extend(rules::check_unordered_float_reduction(
                &s.rel,
                &s.lexed.tokens,
                &s.mask,
                &s.syn,
            ));
            found.extend(rules::check_wall_clock(
                &s.rel,
                &s.lexed.tokens,
                &s.mask,
                &s.syn,
            ));
        }
        if !RNG_EXEMPT_CRATES.contains(&krate) {
            found.extend(rules::check_unseeded_rng(
                &s.rel,
                &s.lexed.tokens,
                &s.mask,
                &s.syn,
            ));
        }
        found.extend(rules::check_shared_mut_state(
            &s.rel,
            &s.lexed.tokens,
            &s.mask,
            &s.syn,
            GUARANTEE_CRATES.contains(&krate),
        ));
        violations.extend(apply_allows(s, found));
        // Directives naming unknown rules are dead suppressions — report
        // them so typos cannot silently disable the gate.
        for allow in &s.lexed.allows {
            if !rules::is_known_rule(&allow.rule) {
                violations.push(Violation {
                    rule: "unknown-allow",
                    file: s.rel.clone(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "allow directive names unknown rule `{}` (known: {})",
                        allow.rule,
                        rules::RULES
                            .iter()
                            .map(|r| r.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
    }

    violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    LintReport {
        files_scanned: sources.len(),
        violations,
        ..LintReport::default()
    }
}

/// Filters `found` through the file's allow directives. A directive with
/// an empty reason is inert (the violation stands).
fn apply_allows(s: &SourceFile, found: Vec<Violation>) -> Vec<Violation> {
    found
        .into_iter()
        .filter(|v| {
            !s.lexed.allows.iter().any(|a| {
                a.rule == v.rule
                    && !a.reason.is_empty()
                    && (a.file_level || a.line == v.line || a.line + 1 == v.line)
            })
        })
        .collect()
}

/// All `.rs` files under the scanned roots, sorted for stable output.
fn discover(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut out)?;
            }
        }
    }
    for dir in [root.join("src"), root.join("xtask").join("src")] {
        if dir.is_dir() {
            walk_rs(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The owning crate's directory name for rule scoping.
fn classify(rel: &str) -> String {
    let mut parts = rel.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("unknown").to_string(),
        Some("xtask") => "xtask".to_string(),
        Some("src") => "stadvs".to_string(),
        _ => "unknown".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(rel: &str, krate: &str, src: &str) -> LintReport {
        analyze(&[SourceFile::from_source(rel, krate, src)])
    }

    #[test]
    fn no_panic_scoped_to_guarantee_crates() {
        let src = "fn f() { x.unwrap(); }";
        assert_eq!(one("crates/sim/src/a.rs", "sim", src).violations.len(), 1);
        assert!(one("crates/cli/src/a.rs", "cli", src).is_clean());
    }

    #[test]
    fn fault_policy_scoped_to_guarantee_crates() {
        let src = "fn f(p: OverrunPolicy) -> u8 { match p { OverrunPolicy::Abort => 0, _ => 1 } }";
        assert_eq!(one("crates/sim/src/a.rs", "sim", src).violations.len(), 1);
        assert!(one("crates/experiments/src/a.rs", "experiments", src).is_clean());
    }

    #[test]
    fn as_cast_scoped_to_core() {
        let src = "fn f(n: usize) -> f64 { n as f64 }";
        assert_eq!(one("crates/core/src/a.rs", "core", src).violations.len(), 1);
        assert!(one("crates/sim/src/a.rs", "sim", src).is_clean());
    }

    #[test]
    fn hot_path_alloc_covers_the_platform_stepping_loop() {
        // The multiprocessor engine's per-core stepping loop lives in
        // `crates/sim/src/platform_sim.rs` and is subject to the same
        // allocation discipline as the uniprocessor dispatch loop.
        let src = "fn f() { for core in cores { let o = outcome.clone(); } }";
        let report = one("crates/sim/src/platform_sim.rs", "sim", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "hot-path-alloc");
    }

    #[test]
    fn hot_path_alloc_covers_the_demand_analysis_files() {
        // The slack analysis runs once per dispatch; its file is covered
        // even though the `core` crate as a whole is not.
        let src = "fn f() { loop { let v = xs.to_vec(); } }";
        let report = one("crates/core/src/sources/demand.rs", "core", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "hot-path-alloc");
        let report = one("crates/core/src/slack_edf.rs", "core", src);
        assert_eq!(report.violations.len(), 1);
        // Other core files stay exempt.
        assert!(one("crates/core/src/ledger.rs", "core", src).is_clean());
    }

    #[test]
    fn hot_path_alloc_pins_the_kernel_files_by_name() {
        // The kernel's queue and dispatch are covered twice over: by the
        // `sim` crate-level scope and by the explicit file pins. The pin
        // must hold even for a hypothetical re-scoping, so assert the
        // file list directly as well as the end-to-end coverage.
        assert!(HOT_PATH_FILES.contains(&"crates/sim/src/event.rs"));
        assert!(HOT_PATH_FILES.contains(&"crates/sim/src/kernel.rs"));
        assert!(HOT_PATH_FILES.contains(&"crates/sim/src/queue.rs"));
        assert!(HOT_PATH_FILES.contains(&"crates/sim/src/component.rs"));
        let src = "fn f() { loop { let v = xs.to_vec(); } }";
        for rel in [
            "crates/sim/src/event.rs",
            "crates/sim/src/kernel.rs",
            "crates/sim/src/queue.rs",
            "crates/sim/src/component.rs",
        ] {
            let report = one(rel, "sim", src);
            assert_eq!(report.violations.len(), 1, "{rel}");
            assert_eq!(report.violations[0].rule, "hot-path-alloc", "{rel}");
        }
    }

    #[test]
    fn determinism_rules_cover_the_kernel_files() {
        // The kernel orders events by iterating collections; the
        // determinism dataflow rules (nondet-iter and friends) must see
        // those files through the `sim` crate scope.
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, u32>) { for (k, v) in m.iter() { emit(*k, *v); } }";
        let report = one("crates/sim/src/kernel.rs", "sim", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "nondet-iter");
    }

    #[test]
    fn hot_path_alloc_covers_the_fleet_engine() {
        // The fleet engine's per-node shard loop runs once per simulated
        // node — 10^5..10^6 times per sweep — so it keeps the same
        // allocation discipline as the dispatch loops.
        let src = "fn f() { for i in lo..hi { let v = xs.to_vec(); } }";
        let report = one("crates/fleet/src/engine.rs", "fleet", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "hot-path-alloc");
        // The rest of the fleet crate is not on the per-node path.
        assert!(one("crates/fleet/src/spec.rs", "fleet", src).is_clean());
    }

    #[test]
    fn model_subsystem_files_inherit_the_guarantee_discipline() {
        // The task-model layer (skip admissibility in `sim::model`, seeded
        // sporadic arrival draws in `workload::spec`) sits inside the
        // scanned scopes: determinism rules cover both crates and the
        // no-panic rule covers `sim`, with no per-file scope edits.
        let unseeded = "fn f() { let mut r = rand::thread_rng(); }";
        for (rel, krate) in [
            ("crates/sim/src/model.rs", "sim"),
            ("crates/workload/src/spec.rs", "workload"),
        ] {
            assert_eq!(one(rel, krate, unseeded).violations.len(), 1, "{rel}");
        }
        let panicky = "fn f() { x.unwrap(); }";
        assert_eq!(
            one("crates/sim/src/model.rs", "sim", panicky)
                .violations
                .len(),
            1
        );
        // `workload` is not a guarantee crate: its validation surface
        // returns `Result`s, so no-panic does not apply there.
        assert!(one("crates/workload/src/spec.rs", "workload", panicky).is_clean());
    }

    #[test]
    fn nondet_iter_scoped_to_determinism_crates() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) { for k in m.keys() { go(k); } }";
        for krate in ["sim", "experiments", "workload", "analysis", "fleet"] {
            let rel = format!("crates/{krate}/src/a.rs");
            assert_eq!(one(&rel, krate, src).violations.len(), 1, "{krate}");
        }
        assert!(one("crates/cli/src/a.rs", "cli", src).is_clean());
        assert!(one("xtask/src/a.rs", "xtask", src).is_clean());
    }

    #[test]
    fn unordered_float_reduction_scoped_to_determinism_crates() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &HashMap<u32, f64>) -> f64 { m.values().map(|v| v + 1.0).sum::<f64>() }";
        let report = one("crates/power/src/a.rs", "power", src);
        // Both the iteration and the reduction fire — each names a
        // different fix.
        assert_eq!(report.violations.len(), 2, "{report:?}");
        assert!(one("crates/bench/src/a.rs", "bench", src).is_clean());
    }

    #[test]
    fn wall_clock_scoped_to_determinism_crates() {
        let src = "fn f() { let t = std::time::Instant::now(); }";
        assert_eq!(one("crates/sim/src/a.rs", "sim", src).violations.len(), 1);
        assert_eq!(one("src/theory.rs", "stadvs", src).violations.len(), 1);
        assert!(one("crates/bench/src/a.rs", "bench", src).is_clean());
        assert!(one("crates/cli/src/a.rs", "cli", src).is_clean());
    }

    #[test]
    fn unseeded_rng_exempts_only_xtask_and_bench() {
        let src = "fn f() { let mut r = rand::thread_rng(); }";
        assert_eq!(one("crates/sim/src/a.rs", "sim", src).violations.len(), 1);
        assert_eq!(one("crates/cli/src/a.rs", "cli", src).violations.len(), 1);
        assert!(one("crates/bench/src/a.rs", "bench", src).is_clean());
        assert!(one("xtask/src/a.rs", "xtask", src).is_clean());
    }

    #[test]
    fn shared_mut_state_static_mut_everywhere_lazies_in_guarantee() {
        let static_mut = "static mut S: u64 = 0;";
        assert_eq!(
            one("crates/cli/src/a.rs", "cli", static_mut)
                .violations
                .len(),
            1
        );
        let lazy = "use std::sync::OnceLock;\nstatic T: OnceLock<u64> = OnceLock::new();";
        assert_eq!(one("crates/sim/src/a.rs", "sim", lazy).violations.len(), 2);
        assert!(one("crates/experiments/src/a.rs", "experiments", lazy).is_clean());
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "fn f() { x.unwrap(); // xtask:allow(no-panic): infallible by construction\n}";
        assert!(one("crates/sim/src/a.rs", "sim", src).is_clean());
    }

    #[test]
    fn preceding_line_allow_suppresses() {
        let src = "fn f() {\n    // xtask:allow(no-panic): infallible by construction\n    x.unwrap();\n}";
        assert!(one("crates/sim/src/a.rs", "sim", src).is_clean());
    }

    #[test]
    fn file_level_allow_suppresses_everywhere() {
        let src = "// xtask:allow-file(no-panic): prototype module\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }";
        assert!(one("crates/sim/src/a.rs", "sim", src).is_clean());
    }

    #[test]
    fn allow_without_reason_is_inert() {
        let src = "fn f() { x.unwrap(); // xtask:allow(no-panic)\n}";
        assert_eq!(one("crates/sim/src/a.rs", "sim", src).violations.len(), 1);
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let src = "fn f() { x.unwrap(); // xtask:allow(float-eq): wrong rule\n}";
        let report = one("crates/sim/src/a.rs", "sim", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "no-panic");
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// xtask:allow(no-such-rule): whatever\nfn f() {}";
        let report = one("crates/sim/src/a.rs", "sim", src);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, "unknown-allow");
    }

    #[test]
    fn governor_doc_resolves_across_files() {
        let decl = SourceFile::from_source(
            "crates/core/src/g.rs",
            "core",
            "/// Deadline safety: bounded by the certified allowance.\npub struct Cross;",
        );
        let imp = SourceFile::from_source(
            "crates/core/src/i.rs",
            "core",
            "impl Governor for Cross { }",
        );
        assert!(analyze(&[decl, imp]).is_clean());
    }

    #[test]
    fn classification() {
        assert_eq!(classify("crates/sim/src/lib.rs"), "sim");
        assert_eq!(classify("src/lib.rs"), "stadvs");
        assert_eq!(classify("xtask/src/main.rs"), "xtask");
    }
}
