//! The second analysis layer: a syntactic pass over the token stream that
//! recovers just enough item structure for the determinism rules —
//! use-resolution (including `as` aliases and nested groups) and
//! scope-tracked type bindings for `let` statements, struct fields and
//! function parameters.
//!
//! This is deliberately not a full parser. It answers two questions the
//! token-window rules cannot:
//!
//! 1. *What does this name resolve to?* `use std::collections::HashMap as
//!    Map;` makes `Map` a hash map; `use std::time::Instant as Clock;`
//!    makes `Clock::now()` a wall-clock read.
//! 2. *What is the declared type of this identifier here?* `let order:
//!    HashMap<JobId, f64>` makes a later `order.values()` an unordered
//!    iteration — unless an inner `let order: Vec<_>` shadows it.
//!
//! Everything is name-based and per-file: a binding is matched by its
//! identifier within its token-index scope, fields are visible file-wide,
//! and types declared in *other* files are invisible. That is the right
//! trade-off for a lint: it can under-approximate (miss a cross-file hash
//! field) but its positives are real.

use std::collections::HashMap;

use crate::lexer::{Token, TokenKind};
use crate::rules::matching_close;

/// Where a typed binding was introduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BindingKind {
    /// Struct field — visible file-wide (matched through `self.name` or
    /// any `x.name` receiver).
    Field,
    /// Function parameter — visible in the function body.
    Param,
    /// `let` binding — visible to the end of its enclosing block.
    Let,
}

/// One identifier with a recovered type, valid over a token-index range.
#[derive(Debug, Clone)]
pub struct Binding {
    pub name: String,
    /// Canonical head of the declared type, alias-resolved: for
    /// `use std::collections::HashMap as Map; let m: Map<_, _>` this is
    /// `"HashMap"`.
    pub ty: String,
    pub kind: BindingKind,
    /// Inclusive token-index range in which the binding is visible.
    pub scope: (usize, usize),
}

/// The per-file syntax index consumed by the dataflow rules.
#[derive(Debug, Default)]
pub struct FileSyntax {
    /// `name in scope` → full `::`-joined import path.
    imports: HashMap<String, String>,
    /// All recovered typed bindings, in declaration order.
    bindings: Vec<Binding>,
    /// `use_mask[i]`: token `i` lies inside a `use` declaration (rules
    /// that flag expression-position names skip these).
    pub use_mask: Vec<bool>,
}

impl FileSyntax {
    /// Resolves `name` through the file's imports to its canonical type
    /// name: the last segment of the imported path, or `name` itself when
    /// unimported (an unimported name in type position can only be a
    /// prelude/local type spelled by its real name).
    pub fn canonical<'a>(&'a self, name: &'a str) -> &'a str {
        match self.imports.get(name) {
            Some(path) => path.rsplit("::").next().unwrap_or(name),
            None => name,
        }
    }

    /// The full import path `name` resolves to, if imported.
    pub fn import_path(&self, name: &str) -> Option<&str> {
        self.imports.get(name).map(String::as_str)
    }

    /// The canonical type of `name` at token index `idx`: the innermost
    /// binding whose scope contains `idx`, with `let` shadowing params
    /// shadowing fields.
    pub fn binding_ty_at(&self, name: &str, idx: usize) -> Option<&str> {
        self.bindings
            .iter()
            .filter(|b| b.name == name && b.scope.0 <= idx && idx <= b.scope.1)
            .max_by_key(|b| (b.scope.0, b.kind))
            .map(|b| b.ty.as_str())
    }

    #[cfg(test)]
    fn binding(&self, name: &str) -> Option<&Binding> {
        self.bindings.iter().find(|b| b.name == name)
    }
}

/// Builds the syntax index for one file's tokens.
pub fn parse(tokens: &[Token]) -> FileSyntax {
    let mut syn = FileSyntax {
        use_mask: vec![false; tokens.len()],
        ..FileSyntax::default()
    };
    collect_imports(tokens, &mut syn);
    collect_bindings(tokens, &mut syn);
    syn
}

// ---------------------------------------------------------------------------
// Use-resolution.

fn collect_imports(tokens: &[Token], syn: &mut FileSyntax) {
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].kind.is_ident("use") {
            let end = parse_use_tree(tokens, i + 1, &mut Vec::new(), syn);
            // Mark the declaration through its terminating `;`.
            let semi = (end..tokens.len())
                .find(|&j| tokens[j].kind.is_punct(";"))
                .unwrap_or(end.min(tokens.len().saturating_sub(1)));
            for m in syn.use_mask[i..=semi.min(tokens.len() - 1)].iter_mut() {
                *m = true;
            }
            i = semi + 1;
        } else {
            i += 1;
        }
    }
}

/// Parses one use-tree starting at `i`, accumulating `prefix` segments.
/// Returns the index just past the tree.
fn parse_use_tree(
    tokens: &[Token],
    i: usize,
    prefix: &mut Vec<String>,
    syn: &mut FileSyntax,
) -> usize {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Open('{')) => {
            let mut j = i + 1;
            loop {
                j = parse_use_tree(tokens, j, prefix, syn);
                match tokens.get(j).map(|t| &t.kind) {
                    Some(TokenKind::Punct(",")) => j += 1,
                    Some(TokenKind::Close('}')) => return j + 1,
                    _ => return j, // malformed or EOF; bail
                }
            }
        }
        Some(TokenKind::Punct("*")) => i + 1, // glob: nothing nameable
        Some(TokenKind::Ident(seg)) => {
            prefix.push(seg.clone());
            let next = tokens.get(i + 1).map(|t| &t.kind);
            let out = if next.is_some_and(|k| k.is_punct("::")) {
                parse_use_tree(tokens, i + 2, prefix, syn)
            } else if next.is_some_and(|k| k.is_ident("as")) {
                match tokens.get(i + 2).map(|t| &t.kind) {
                    Some(TokenKind::Ident(alias)) => {
                        syn.imports.insert(alias.clone(), prefix.join("::"));
                        i + 3
                    }
                    _ => i + 3, // `as _`: unnameable, skip
                }
            } else {
                syn.imports.insert(seg.clone(), prefix.join("::"));
                i + 1
            };
            prefix.pop();
            out
        }
        _ => i,
    }
}

// ---------------------------------------------------------------------------
// Typed bindings with scope tracking.

fn collect_bindings(tokens: &[Token], syn: &mut FileSyntax) {
    // Stack of open-brace token indices; memoized matching closes.
    let mut blocks: Vec<usize> = Vec::new();
    let mut closes: HashMap<usize, usize> = HashMap::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Open('{') => blocks.push(i),
            TokenKind::Close('}') => {
                blocks.pop();
            }
            TokenKind::Ident(w) if w == "let" && !syn.use_mask[i] => {
                let scope_end = match blocks.last() {
                    Some(&open) => *closes
                        .entry(open)
                        .or_insert_with(|| matching_close(tokens, open).unwrap_or(tokens.len())),
                    None => tokens.len().saturating_sub(1),
                };
                if let Some((name, ty)) = parse_let(tokens, i, syn) {
                    syn.bindings.push(Binding {
                        name,
                        ty,
                        kind: BindingKind::Let,
                        scope: (i, scope_end),
                    });
                }
            }
            TokenKind::Ident(w) if w == "struct" => {
                collect_struct_fields(tokens, i, syn);
            }
            TokenKind::Ident(w) if w == "fn" => {
                collect_fn_params(tokens, i, syn);
            }
            _ => {}
        }
        i += 1;
    }
}

/// `let [mut] name : Type = ...` or `let [mut] name = Type::ctor(...)`.
fn parse_let(tokens: &[Token], let_idx: usize, syn: &FileSyntax) -> Option<(String, String)> {
    let mut i = let_idx + 1;
    if tokens.get(i)?.kind.is_ident("mut") {
        i += 1;
    }
    let name = match &tokens.get(i)?.kind {
        TokenKind::Ident(n) => n.clone(),
        _ => return None, // tuple / struct pattern: no single binding
    };
    i += 1;
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Punct(":")) => {
            let ty = type_head(tokens, i + 1, syn)?;
            Some((name, ty))
        }
        Some(TokenKind::Punct("=")) => {
            let ty = ctor_head(tokens, i + 1, syn)?;
            Some((name, ty))
        }
        _ => None,
    }
}

/// The canonical head of a type written at `start`: skips `&`, `mut`,
/// lifetimes and `dyn`/`impl`, then reads a `::`-separated path and takes
/// its last segment (before any `<` generic arguments).
fn type_head(tokens: &[Token], start: usize, syn: &FileSyntax) -> Option<String> {
    let mut i = start;
    loop {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct("&")) | Some(TokenKind::Punct("&&")) => i += 1,
            Some(TokenKind::Lifetime) => i += 1,
            Some(TokenKind::Ident(w)) if w == "mut" || w == "dyn" || w == "impl" => i += 1,
            _ => break,
        }
    }
    let mut head = match &tokens.get(i)?.kind {
        TokenKind::Ident(seg) => seg.clone(),
        _ => return None,
    };
    i += 1;
    while tokens.get(i).is_some_and(|t| t.kind.is_punct("::")) {
        match tokens.get(i + 1).map(|t| &t.kind) {
            Some(TokenKind::Ident(seg)) => {
                head = seg.clone();
                i += 2;
            }
            _ => break,
        }
    }
    Some(syn.canonical(&head).to_string())
}

/// Infers a type from a constructor-call RHS: `HashMap::new()`,
/// `std::collections::HashMap::with_capacity(8)`,
/// `HashMap::<K, V>::new()`. Returns the canonical type segment.
fn ctor_head(tokens: &[Token], start: usize, syn: &FileSyntax) -> Option<String> {
    let mut i = start;
    while tokens
        .get(i)
        .is_some_and(|t| t.kind.is_punct("&") || t.kind.is_ident("mut"))
    {
        i += 1;
    }
    // Read the leading path run.
    let mut segs: Vec<String> = Vec::new();
    loop {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Ident(seg)) => {
                segs.push(seg.clone());
                i += 1;
            }
            _ => break,
        }
        if tokens.get(i).is_some_and(|t| t.kind.is_punct("::")) {
            // `Type::<args>::ctor(...)` — the turbofish names the type.
            if tokens.get(i + 1).is_some_and(|t| t.kind.is_punct("<")) {
                let ty = segs.last()?.clone();
                return Some(syn.canonical(&ty).to_string());
            }
            i += 1;
        } else {
            break;
        }
    }
    // `Type::ctor(...)` — at least two segments followed by a call.
    if segs.len() >= 2
        && tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Open('('))
    {
        let ty = segs[segs.len() - 2].clone();
        return Some(syn.canonical(&ty).to_string());
    }
    None
}

/// Fields of `struct Name { a: T, b: U }` become file-wide bindings.
fn collect_struct_fields(tokens: &[Token], struct_idx: usize, syn: &mut FileSyntax) {
    let mut i = struct_idx + 1;
    if !matches!(tokens.get(i).map(|t| &t.kind), Some(TokenKind::Ident(_))) {
        return;
    }
    i += 1;
    i = skip_generics(tokens, i);
    // `where` clauses on braced structs sit between generics and the body.
    while i < tokens.len()
        && !matches!(
            tokens[i].kind,
            TokenKind::Open('{') | TokenKind::Open('(') | TokenKind::Punct(";")
        )
    {
        i += 1;
    }
    if tokens.get(i).map(|t| &t.kind) != Some(&TokenKind::Open('{')) {
        return; // tuple or unit struct
    }
    let close = match matching_close(tokens, i) {
        Some(c) => c,
        None => return,
    };
    let file_end = tokens.len().saturating_sub(1);
    // Split the body into fields at top-level commas.
    let mut j = i + 1;
    let mut field_start = j;
    let mut depth = 0usize;
    let mut angle = 0isize;
    while j <= close {
        match &tokens[j].kind {
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) if j < close => depth = depth.saturating_sub(1),
            TokenKind::Punct("<") if depth == 0 => angle += 1,
            TokenKind::Punct("<<") if depth == 0 => angle += 2,
            TokenKind::Punct(">") if depth == 0 => angle -= 1,
            TokenKind::Punct(">>") if depth == 0 => angle -= 2,
            _ => {}
        }
        let at_split = (tokens[j].kind.is_punct(",") && depth == 0 && angle <= 0) || j == close;
        if at_split {
            record_field(tokens, field_start, j, file_end, syn);
            field_start = j + 1;
            angle = 0;
        }
        j += 1;
    }
}

/// One struct field chunk: `[pub[(..)]] name : Type`.
fn record_field(tokens: &[Token], start: usize, end: usize, file_end: usize, syn: &mut FileSyntax) {
    let mut i = start;
    // Skip attributes, doc comments and visibility.
    loop {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::DocComment(_)) => i += 1,
            Some(TokenKind::Punct("#"))
                if tokens
                    .get(i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Open('[')) =>
            {
                match matching_close(tokens, i + 1) {
                    Some(e) => i = e + 1,
                    None => return,
                }
            }
            Some(TokenKind::Ident(w)) if w == "pub" => {
                i += 1;
                if tokens
                    .get(i)
                    .is_some_and(|t| t.kind == TokenKind::Open('('))
                {
                    match matching_close(tokens, i) {
                        Some(e) => i = e + 1,
                        None => return,
                    }
                }
            }
            _ => break,
        }
    }
    if i >= end {
        return;
    }
    let name = match &tokens[i].kind {
        TokenKind::Ident(n) => n.clone(),
        _ => return,
    };
    if !tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(":")) {
        return;
    }
    if let Some(ty) = type_head(tokens, i + 2, syn) {
        syn.bindings.push(Binding {
            name,
            ty,
            kind: BindingKind::Field,
            scope: (0, file_end),
        });
    }
}

/// Parameters of `fn name(...) { ... }` become body-scoped bindings.
fn collect_fn_params(tokens: &[Token], fn_idx: usize, syn: &mut FileSyntax) {
    let mut i = fn_idx + 1;
    if !matches!(tokens.get(i).map(|t| &t.kind), Some(TokenKind::Ident(_))) {
        return;
    }
    i += 1;
    i = skip_generics(tokens, i);
    if tokens.get(i).map(|t| &t.kind) != Some(&TokenKind::Open('(')) {
        return;
    }
    let params_close = match matching_close(tokens, i) {
        Some(c) => c,
        None => return,
    };
    // The body: first top-level `{` after the signature, unless a `;`
    // (trait method declaration) ends it first.
    let mut j = params_close + 1;
    let mut body = None;
    let mut depth = 0usize;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Open('{') if depth == 0 => {
                body = Some(j);
                break;
            }
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) => depth = depth.saturating_sub(1),
            TokenKind::Punct(";") if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let Some(body_open) = body else { return };
    let body_close = matching_close(tokens, body_open).unwrap_or(tokens.len() - 1);

    // Split the parameter list at top-level commas.
    let mut k = i + 1;
    let mut chunk_start = k;
    let mut depth = 0usize;
    let mut angle = 0isize;
    while k <= params_close {
        match &tokens[k].kind {
            TokenKind::Open(_) => depth += 1,
            TokenKind::Close(_) if k < params_close => depth = depth.saturating_sub(1),
            TokenKind::Punct("<") if depth == 0 => angle += 1,
            TokenKind::Punct("<<") if depth == 0 => angle += 2,
            TokenKind::Punct(">") if depth == 0 => angle -= 1,
            TokenKind::Punct(">>") if depth == 0 => angle -= 2,
            _ => {}
        }
        let at_split =
            (tokens[k].kind.is_punct(",") && depth == 0 && angle <= 0) || k == params_close;
        if at_split {
            record_param(tokens, chunk_start, k, (body_open, body_close), syn);
            chunk_start = k + 1;
            angle = 0;
        }
        k += 1;
    }
}

/// One parameter chunk: `[mut] name : Type` (skips `self` and patterns).
fn record_param(
    tokens: &[Token],
    start: usize,
    end: usize,
    scope: (usize, usize),
    syn: &mut FileSyntax,
) {
    let mut i = start;
    if tokens.get(i).is_some_and(|t| t.kind.is_ident("mut")) {
        i += 1;
    }
    if i >= end {
        return;
    }
    let name = match &tokens[i].kind {
        TokenKind::Ident(n) if n != "self" => n.clone(),
        _ => return,
    };
    if !tokens.get(i + 1).is_some_and(|t| t.kind.is_punct(":")) {
        return;
    }
    if let Some(ty) = type_head(tokens, i + 2, syn) {
        syn.bindings.push(Binding {
            name,
            ty,
            kind: BindingKind::Param,
            scope,
        });
    }
}

/// Skips a `<...>` generic-parameter list starting at `i`, handling the
/// lexer's fused `<<`/`>>` shift tokens.
fn skip_generics(tokens: &[Token], i: usize) -> usize {
    if !tokens.get(i).is_some_and(|t| t.kind.is_punct("<")) {
        return i;
    }
    let mut angle = 0isize;
    let mut j = i;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct("<") => angle += 1,
            TokenKind::Punct("<<") => angle += 2,
            TokenKind::Punct(">") => angle -= 1,
            TokenKind::Punct(">>") => angle -= 2,
            TokenKind::Punct(";") | TokenKind::Open('{') => return j, // malformed; bail
            _ => {}
        }
        j += 1;
        if angle <= 0 {
            break;
        }
    }
    j
}

// ---------------------------------------------------------------------------
// Receiver / method-chain recovery (shared by the dataflow rules).

/// The root identifier of the method call whose `.` sits at `dot_idx`:
/// `granted.keys()` and `self.granted.keys()` both yield `granted`.
/// Returns `None` when the receiver is a call result or a parenthesized
/// expression — those cannot be matched against the binding table.
pub fn receiver_root(tokens: &[Token], dot_idx: usize) -> Option<(String, usize)> {
    let i = dot_idx.checked_sub(1)?;
    match &tokens[i].kind {
        TokenKind::Ident(n) if n != "self" => Some((n.clone(), i)),
        _ => None,
    }
}

/// Index of the `Open` matching the `Close` at `close_idx` (backward scan).
pub fn matching_open(tokens: &[Token], close_idx: usize) -> Option<usize> {
    let mut depth = 0usize;
    for i in (0..=close_idx).rev() {
        match tokens[i].kind {
            TokenKind::Close(_) => depth += 1,
            TokenKind::Open(_) => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Walks the method chain leftwards from the method identifier at
/// `method_idx`, returning the chain's earlier method names (nearest
/// first) and the root identifier when the chain bottoms out in a plain
/// name: for `self.rows.values().map(f).sum` at `sum`, the methods are
/// `["map", "values"]` and the root is `Some(("rows", idx_of_values_dot))`.
pub fn chain_info(tokens: &[Token], method_idx: usize) -> (Vec<String>, Option<String>) {
    let mut methods = Vec::new();
    let mut cur = method_idx;
    loop {
        // The receiver of the method at `cur` sits before its `.`.
        let Some(dot) = cur.checked_sub(1) else {
            return (methods, None);
        };
        if !tokens[dot].kind.is_punct(".") {
            return (methods, None);
        }
        let Some(before) = dot.checked_sub(1) else {
            return (methods, None);
        };
        match &tokens[before].kind {
            // `name.method` — chain bottoms out.
            TokenKind::Ident(n) => {
                let root = if n == "self" { None } else { Some(n.clone()) };
                return (methods, root);
            }
            // `expr(...).method` — unwind the call and read its method name.
            TokenKind::Close(')') => {
                let Some(open) = matching_open(tokens, before) else {
                    return (methods, None);
                };
                let mut k = match open.checked_sub(1) {
                    Some(k) => k,
                    None => return (methods, None),
                };
                // Skip a turbofish between the method name and its call:
                // `sum::<f64>(...)`.
                if matches!(
                    tokens[k].kind,
                    TokenKind::Punct(">") | TokenKind::Punct(">>")
                ) {
                    let mut angle = 0isize;
                    loop {
                        match &tokens[k].kind {
                            TokenKind::Punct(">") => angle += 1,
                            TokenKind::Punct(">>") => angle += 2,
                            TokenKind::Punct("<") => angle -= 1,
                            TokenKind::Punct("<<") => angle -= 2,
                            _ => {}
                        }
                        if angle <= 0 {
                            break;
                        }
                        match k.checked_sub(1) {
                            Some(p) => k = p,
                            None => return (methods, None),
                        }
                    }
                    match k.checked_sub(1) {
                        Some(p) if tokens[p].kind.is_punct("::") => match p.checked_sub(1) {
                            Some(q) => k = q,
                            None => return (methods, None),
                        },
                        _ => return (methods, None),
                    }
                }
                match &tokens[k].kind {
                    // Only a *method* call continues the chain; a free or
                    // pathed function call (`make()`, `Foo::new()`) is an
                    // opaque root.
                    TokenKind::Ident(m)
                        if k.checked_sub(1)
                            .is_some_and(|p| tokens[p].kind.is_punct(".")) =>
                    {
                        methods.push(m.clone());
                        cur = k;
                    }
                    _ => return (methods, None),
                }
            }
            _ => return (methods, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn syn(src: &str) -> FileSyntax {
        parse(&lex(src).tokens)
    }

    #[test]
    fn resolves_plain_grouped_and_aliased_imports() {
        let s = syn("use std::collections::{HashMap, HashSet as Set};\n\
                     use std::time::Instant as Clock;\n");
        assert_eq!(s.import_path("HashMap"), Some("std::collections::HashMap"));
        assert_eq!(s.import_path("Set"), Some("std::collections::HashSet"));
        assert_eq!(s.canonical("Set"), "HashSet");
        assert_eq!(s.canonical("Clock"), "Instant");
        assert_eq!(s.canonical("Unknown"), "Unknown");
    }

    #[test]
    fn nested_groups_resolve() {
        let s = syn("use std::{collections::{HashMap, BTreeMap}, sync::mpsc};\n");
        assert_eq!(s.import_path("HashMap"), Some("std::collections::HashMap"));
        assert_eq!(
            s.import_path("BTreeMap"),
            Some("std::collections::BTreeMap")
        );
        assert_eq!(s.import_path("mpsc"), Some("std::sync::mpsc"));
    }

    #[test]
    fn use_mask_covers_declarations() {
        let s = syn("use rand::thread_rng;\nfn f() { thread_rng(); }\n");
        let tokens = lex("use rand::thread_rng;\nfn f() { thread_rng(); }\n").tokens;
        let first = tokens
            .iter()
            .position(|t| t.kind.is_ident("thread_rng"))
            .unwrap();
        let second = tokens
            .iter()
            .rposition(|t| t.kind.is_ident("thread_rng"))
            .unwrap();
        assert!(s.use_mask[first], "import occurrence is masked");
        assert!(!s.use_mask[second], "call site is not masked");
    }

    #[test]
    fn let_annotation_and_ctor_inference() {
        let src = "use std::collections::HashMap;\n\
                   fn f() { let a: HashMap<u32, f64> = HashMap::new(); \
                            let b = HashMap::with_capacity(4); \
                            let c = HashMap::<u32, f64>::new(); \
                            let d: Vec<f64> = Vec::new(); }";
        let s = syn(src);
        assert_eq!(s.binding("a").unwrap().ty, "HashMap");
        assert_eq!(s.binding("b").unwrap().ty, "HashMap");
        assert_eq!(s.binding("c").unwrap().ty, "HashMap");
        assert_eq!(s.binding("d").unwrap().ty, "Vec");
    }

    #[test]
    fn alias_resolves_in_type_position() {
        let s = syn(
            "use std::collections::HashMap as Map;\nfn f() { let m: Map<u32, f64> = Map::new(); }",
        );
        assert_eq!(s.binding("m").unwrap().ty, "HashMap");
    }

    #[test]
    fn struct_fields_are_file_wide() {
        let src = "struct G { granted: HashMap<u64, f64>, order: Vec<f64> }\n\
                   fn late() {}";
        let s = syn(src);
        let b = s.binding("granted").unwrap();
        assert_eq!(b.ty, "HashMap");
        assert_eq!(b.kind, BindingKind::Field);
        // Visible at the end of the file.
        let n = lex(src).tokens.len();
        assert_eq!(s.binding_ty_at("granted", n - 1), Some("HashMap"));
    }

    #[test]
    fn fn_params_scope_to_the_body() {
        let src = "fn f(map: &HashMap<u32, f64>) { body(); }\nfn g() { after(); }";
        let s = syn(src);
        let tokens = lex(src).tokens;
        let body = tokens.iter().position(|t| t.kind.is_ident("body")).unwrap();
        let after = tokens
            .iter()
            .position(|t| t.kind.is_ident("after"))
            .unwrap();
        assert_eq!(s.binding_ty_at("map", body), Some("HashMap"));
        assert_eq!(s.binding_ty_at("map", after), None);
    }

    #[test]
    fn let_scope_ends_at_block_close_and_shadows() {
        let src =
            "fn f() { let m: HashMap<u32, u32> = x; { let m: Vec<u32> = y; inner(); } outer(); }";
        let s = syn(src);
        let tokens = lex(src).tokens;
        let inner = tokens
            .iter()
            .position(|t| t.kind.is_ident("inner"))
            .unwrap();
        let outer = tokens
            .iter()
            .position(|t| t.kind.is_ident("outer"))
            .unwrap();
        assert_eq!(
            s.binding_ty_at("m", inner),
            Some("Vec"),
            "inner shadow wins"
        );
        assert_eq!(s.binding_ty_at("m", outer), Some("HashMap"));
    }

    #[test]
    fn generic_fn_params_are_recovered() {
        let src = "fn f<K: Ord>(set: &HashSet<K>) { body(); }";
        let s = syn(src);
        let tokens = lex(src).tokens;
        let body = tokens.iter().position(|t| t.kind.is_ident("body")).unwrap();
        assert_eq!(s.binding_ty_at("set", body), Some("HashSet"));
    }

    #[test]
    fn chain_info_recovers_methods_and_root() {
        let tokens = lex("let x = self.rows.values().map(f).sum::<f64>();").tokens;
        let sum = tokens.iter().position(|t| t.kind.is_ident("sum")).unwrap();
        let (methods, root) = chain_info(&tokens, sum);
        assert_eq!(methods, vec!["map".to_string(), "values".to_string()]);
        assert_eq!(root, Some("rows".to_string()));
    }

    #[test]
    fn chain_info_gives_up_on_call_results() {
        let tokens = lex("let x = make().iter().sum::<f64>();").tokens;
        let sum = tokens.iter().position(|t| t.kind.is_ident("sum")).unwrap();
        let (methods, root) = chain_info(&tokens, sum);
        assert_eq!(methods, vec!["iter".to_string()]);
        assert_eq!(root, None, "make() is not a plain-name root");
    }

    #[test]
    fn receiver_root_reads_the_name_before_the_dot() {
        let tokens = lex("self.granted.keys()").tokens;
        let dot = tokens.iter().position(|t| t.kind.is_ident("keys")).unwrap() - 1;
        assert_eq!(
            receiver_root(&tokens, dot).map(|(n, _)| n),
            Some("granted".to_string())
        );
    }
}
