//! A small self-contained Rust lexer: enough token fidelity for the
//! domain lints (comments, strings, char/lifetime disambiguation, numeric
//! literal classification, multi-char operators) without pulling a parser
//! crate into the trust base.

/// One lexed token with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (raw identifiers are stored without `r#`).
    Ident(String),
    /// Integer literal (suffix included verbatim).
    Int(String),
    /// Float literal (suffix included verbatim).
    Float(String),
    /// Any string literal (contents dropped — never lint-relevant).
    Str,
    /// Character literal.
    Char,
    /// Lifetime such as `'a`.
    Lifetime,
    /// `///`, `//!`, `/** */` or `/*! */` contents, markers stripped.
    DocComment(String),
    /// Operator / punctuation, longest-match (`==`, `..=`, `->`, ...).
    Punct(&'static str),
    /// `(`, `[` or `{`.
    Open(char),
    /// `)`, `]` or `}`.
    Close(char),
}

impl TokenKind {
    pub fn is_ident(&self, s: &str) -> bool {
        matches!(self, TokenKind::Ident(i) if i == s)
    }

    pub fn is_punct(&self, s: &str) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == s)
    }
}

/// A `// xtask:allow(rule): reason` directive found in a plain comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    pub rule: String,
    /// `xtask:allow-file(...)` applies to the whole file.
    pub file_level: bool,
    pub line: usize,
    pub reason: String,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct LexedFile {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
}

const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

const SINGLE_PUNCT: &[(char, &str)] = &[
    ('+', "+"),
    ('-', "-"),
    ('*', "*"),
    ('/', "/"),
    ('%', "%"),
    ('^', "^"),
    ('!', "!"),
    ('&', "&"),
    ('|', "|"),
    ('<', "<"),
    ('>', ">"),
    ('=', "="),
    ('@', "@"),
    ('_', "_"),
    ('.', "."),
    (',', ","),
    (';', ";"),
    (':', ":"),
    ('#', "#"),
    ('$', "$"),
    ('?', "?"),
    ('~', "~"),
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, returning tokens plus any `xtask:allow` directives found in
/// ordinary (non-doc) comments.
pub fn lex(src: &str) -> LexedFile {
    let mut cur = Cursor::new(src);
    let mut out = LexedFile::default();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.starts_with("//") => {
                lex_line_comment(&mut cur, &mut out, line);
            }
            b'/' if cur.starts_with("/*") => {
                lex_block_comment(&mut cur, &mut out, line, col);
            }
            b'r' | b'b' | b'c' if raw_or_byte_string_ahead(&cur) => {
                lex_string_prefixed(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    col,
                });
            }
            _ if is_ident_start(b) => {
                let ident = lex_ident(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line,
                    col,
                });
            }
            b'0'..=b'9' => {
                let kind = lex_number(&mut cur);
                out.tokens.push(Token { kind, line, col });
            }
            b'"' => {
                lex_plain_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    line,
                    col,
                });
            }
            b'\'' => {
                let kind = lex_quote(&mut cur);
                out.tokens.push(Token { kind, line, col });
            }
            b'(' | b'[' | b'{' => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Open(b as char),
                    line,
                    col,
                });
            }
            b')' | b']' | b'}' => {
                cur.bump();
                out.tokens.push(Token {
                    kind: TokenKind::Close(b as char),
                    line,
                    col,
                });
            }
            _ => {
                if let Some(p) = MULTI_PUNCT.iter().find(|p| cur.starts_with(p)) {
                    cur.bump_n(p.len());
                    out.tokens.push(Token {
                        kind: TokenKind::Punct(p),
                        line,
                        col,
                    });
                } else if let Some(&(_, p)) = SINGLE_PUNCT.iter().find(|&&(c, _)| c as u8 == b) {
                    cur.bump();
                    out.tokens.push(Token {
                        kind: TokenKind::Punct(p),
                        line,
                        col,
                    });
                } else {
                    // Unknown byte (e.g. stray unicode punctuation): skip.
                    cur.bump();
                }
            }
        }
    }
    out
}

fn lex_line_comment(cur: &mut Cursor<'_>, out: &mut LexedFile, line: usize) {
    let col = cur.col;
    let is_doc = cur.starts_with("///") && !cur.starts_with("////");
    let is_inner_doc = cur.starts_with("//!");
    let mut text = String::new();
    while let Some(b) = cur.peek() {
        if b == b'\n' {
            break;
        }
        text.push(cur.bump().unwrap() as char);
    }
    if is_doc || is_inner_doc {
        let stripped = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .to_string();
        out.tokens.push(Token {
            kind: TokenKind::DocComment(stripped),
            line,
            col,
        });
    } else if let Some(dir) = parse_allow(&text, line) {
        out.allows.push(dir);
    }
}

fn lex_block_comment(cur: &mut Cursor<'_>, out: &mut LexedFile, line: usize, col: usize) {
    let is_doc = (cur.starts_with("/**") && !cur.starts_with("/***") && !cur.starts_with("/**/"))
        || cur.starts_with("/*!");
    let mut text = String::new();
    cur.bump_n(2);
    let mut depth = 1usize;
    while depth > 0 {
        if cur.starts_with("/*") {
            depth += 1;
            cur.bump_n(2);
            text.push_str("/*");
        } else if cur.starts_with("*/") {
            depth -= 1;
            cur.bump_n(2);
            if depth > 0 {
                text.push_str("*/");
            }
        } else if let Some(b) = cur.bump() {
            text.push(b as char);
        } else {
            break; // unterminated; tolerate
        }
    }
    if is_doc {
        let stripped = text
            .trim_start_matches('*')
            .trim_start_matches('!')
            .to_string();
        out.tokens.push(Token {
            kind: TokenKind::DocComment(stripped),
            line,
            col,
        });
    } else if let Some(dir) = parse_allow(&text, line) {
        out.allows.push(dir);
    }
}

/// Parses `xtask:allow(rule): reason` / `xtask:allow-file(rule): reason`
/// from a comment body. The reason is mandatory: an allow without a
/// recorded justification is itself a process violation.
fn parse_allow(comment: &str, line: usize) -> Option<AllowDirective> {
    let idx = comment.find("xtask:allow")?;
    let rest = &comment[idx + "xtask:allow".len()..];
    let (file_level, rest) = match rest.strip_prefix("-file") {
        Some(r) => (true, r),
        None => (false, rest),
    };
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if rule.is_empty() {
        return None;
    }
    Some(AllowDirective {
        rule,
        file_level,
        line,
        reason: reason.to_string(),
    })
}

fn raw_or_byte_string_ahead(cur: &Cursor<'_>) -> bool {
    // r"..", r#"..", br".., b"..", rb? (not legal), c"..", br#"..
    let s = &cur.src[cur.pos..];
    let strip = |s: &[u8], b: u8| -> Option<usize> {
        if s.first() == Some(&b) {
            Some(1)
        } else {
            None
        }
    };
    let mut i = 0;
    if let Some(n) = strip(s, b'b').or_else(|| strip(s, b'c')) {
        i += n;
    }
    if s.get(i) == Some(&b'r') {
        i += 1;
        while s.get(i) == Some(&b'#') {
            i += 1;
        }
    }
    s.get(i) == Some(&b'"') && i > 0
}

fn lex_string_prefixed(cur: &mut Cursor<'_>) {
    // Consume optional b/c prefix.
    if matches!(cur.peek(), Some(b'b') | Some(b'c')) {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek() == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        loop {
            match cur.bump() {
                None => break,
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek() == Some(b'#') {
                        seen += 1;
                        cur.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {}
            }
        }
    } else {
        lex_plain_string(cur);
    }
}

fn lex_plain_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
}

fn lex_ident(cur: &mut Cursor<'_>) -> String {
    // Raw identifier?
    if cur.starts_with("r#") && cur.peek_at(2).is_some_and(is_ident_start) {
        cur.bump_n(2);
    }
    let mut s = String::new();
    while let Some(b) = cur.peek() {
        if is_ident_continue(b) {
            s.push(cur.bump().unwrap() as char);
        } else {
            break;
        }
    }
    s
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut text = String::new();
    let mut is_float = false;
    let radix_prefix = cur.starts_with("0x")
        || cur.starts_with("0X")
        || cur.starts_with("0o")
        || cur.starts_with("0O")
        || cur.starts_with("0b")
        || cur.starts_with("0B");
    if radix_prefix {
        text.push(cur.bump().unwrap() as char);
        text.push(cur.bump().unwrap() as char);
        while let Some(b) = cur.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                text.push(cur.bump().unwrap() as char);
            } else {
                break;
            }
        }
        return TokenKind::Int(text);
    }
    while let Some(b) = cur.peek() {
        if b.is_ascii_digit() || b == b'_' {
            text.push(cur.bump().unwrap() as char);
        } else {
            break;
        }
    }
    // Fractional part: a `.` followed by a digit (NOT `..` or a method).
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        text.push(cur.bump().unwrap() as char);
        while let Some(b) = cur.peek() {
            if b.is_ascii_digit() || b == b'_' {
                text.push(cur.bump().unwrap() as char);
            } else {
                break;
            }
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        let next = cur.peek_at(1);
        let next2 = cur.peek_at(2);
        let exp_ok = next.is_some_and(|b| b.is_ascii_digit())
            || (matches!(next, Some(b'+') | Some(b'-'))
                && next2.is_some_and(|b| b.is_ascii_digit()));
        if exp_ok {
            is_float = true;
            text.push(cur.bump().unwrap() as char);
            if matches!(cur.peek(), Some(b'+') | Some(b'-')) {
                text.push(cur.bump().unwrap() as char);
            }
            while let Some(b) = cur.peek() {
                if b.is_ascii_digit() || b == b'_' {
                    text.push(cur.bump().unwrap() as char);
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (f64, u32, usize, ...).
    if cur.peek().is_some_and(is_ident_start) {
        let mut suffix = String::new();
        while let Some(b) = cur.peek() {
            if is_ident_continue(b) {
                suffix.push(cur.bump().unwrap() as char);
            } else {
                break;
            }
        }
        if suffix.starts_with('f') {
            is_float = true;
        }
        text.push_str(&suffix);
    }
    if is_float {
        TokenKind::Float(text)
    } else {
        TokenKind::Int(text)
    }
}

fn lex_quote(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // the opening '
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal.
            cur.bump();
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            } else {
                // \u{...} or similar: consume until closing quote.
                while let Some(b) = cur.bump() {
                    if b == b'\'' {
                        break;
                    }
                }
            }
            TokenKind::Char
        }
        Some(b) if is_ident_start(b) => {
            // `'a'` is a char; `'a` (no closing quote) is a lifetime. The
            // run length is counted in *characters* (UTF-8 lead bytes) so
            // multi-byte literals like '█' lex as chars, not lifetimes.
            let mut bytes = 1;
            while cur.peek_at(bytes).is_some_and(is_ident_continue) {
                bytes += 1;
            }
            let chars = (0..bytes)
                .filter(|&i| cur.peek_at(i).is_some_and(|b| b & 0xC0 != 0x80))
                .count();
            if cur.peek_at(bytes) == Some(b'\'') && chars == 1 {
                cur.bump_n(bytes + 1);
                TokenKind::Char
            } else {
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // Some other char literal like '(' or '0'.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Lifetime,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn numbers_and_ranges() {
        let k = kinds("0..200 1.0e-9 0x1F 2usize 3.5f64 1e6");
        assert_eq!(
            k,
            vec![
                TokenKind::Int("0".into()),
                TokenKind::Punct(".."),
                TokenKind::Int("200".into()),
                TokenKind::Float("1.0e-9".into()),
                TokenKind::Int("0x1F".into()),
                TokenKind::Int("2usize".into()),
                TokenKind::Float("3.5f64".into()),
                TokenKind::Float("1e6".into()),
            ]
        );
    }

    #[test]
    fn method_on_int_is_not_float() {
        let k = kinds("1.max(2)");
        assert_eq!(k[0], TokenKind::Int("1".into()));
        assert_eq!(k[1], TokenKind::Punct("."));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let k = kinds("'a 'x' '\\n' 'static");
        assert_eq!(
            k,
            vec![
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Lifetime
            ]
        );
    }

    #[test]
    fn multibyte_char_literals_are_chars_not_lifetimes() {
        // A mis-lex here desynchronizes brace matching for the whole file.
        let k = kinds("s.push('█'); s.push('─'); fn f() {}");
        assert_eq!(k.iter().filter(|t| matches!(t, TokenKind::Char)).count(), 2);
        assert!(!k.iter().any(|t| matches!(t, TokenKind::Lifetime)));
    }

    #[test]
    fn strings_including_raw() {
        let k = kinds(r####"  "a == b" r#"x != y"# b"bytes"  "####);
        assert_eq!(k, vec![TokenKind::Str, TokenKind::Str, TokenKind::Str]);
    }

    #[test]
    fn doc_comments_are_tokens_plain_comments_are_not() {
        let lexed = lex("/// doc here\n// plain\nfn f() {}\n");
        assert!(
            matches!(lexed.tokens[0].kind, TokenKind::DocComment(ref s) if s.contains("doc here"))
        );
        assert!(lexed.tokens[1].kind.is_ident("fn"));
    }

    #[test]
    fn allow_directives_parse() {
        let lexed = lex(
            "// xtask:allow(float-eq): quantized identity\nlet a = 1;\n// xtask:allow-file(no-panic): generated code\n",
        );
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule, "float-eq");
        assert!(!lexed.allows[0].file_level);
        assert_eq!(lexed.allows[0].line, 1);
        assert_eq!(lexed.allows[0].reason, "quantized identity");
        assert!(lexed.allows[1].file_level);
    }

    #[test]
    fn nested_block_comments() {
        let k = kinds("/* a /* b */ c */ fn");
        assert_eq!(k, vec![TokenKind::Ident("fn".into())]);
    }

    #[test]
    fn multi_char_operators() {
        let k = kinds("a == b != c ..= d :: e -> f");
        let puncts: Vec<_> = k
            .iter()
            .filter_map(|t| match t {
                TokenKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "..=", "::", "->"]);
    }
}
