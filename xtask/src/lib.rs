//! Domain-specific static analysis for the stadvs workspace.
//!
//! `cargo xtask lint` enforces four invariants that clippy cannot express
//! (see [`rules::RULES`]): epsilon-safe float comparisons, panic-free
//! guarantee crates, documented governor safety arguments, and cast-free
//! claims arithmetic. The implementation is dependency-free on purpose —
//! a hand-rolled lexer ([`lexer`]) rather than a parser crate — so the
//! gate itself adds nothing to the workspace's supply-chain trust base.

pub mod lexer;
pub mod lint;
pub mod report;
pub mod rules;
