//! Workspace automation for stadvs: domain lints and the bench pipeline.
//!
//! `cargo xtask lint` enforces eleven invariants that clippy cannot
//! express (see [`rules::RULES`]): epsilon-safe float comparisons,
//! panic-free guarantee crates, documented governor safety arguments,
//! cast-free claims arithmetic, allocation-free simulator loops,
//! exhaustive overrun-policy matches — and the determinism contract
//! (DESIGN.md §12): no hash-order iteration, no unordered or parallel
//! f64 reductions, no wall-clock reads in simulated code, no unseeded
//! randomness, no shared mutable globals. The implementation is
//! dependency-free on purpose — a hand-rolled lexer ([`lexer`]) plus a
//! syntactic index ([`syntax`]) with use-resolution and scope-tracked
//! type bindings, rather than a parser crate — so the gate itself adds
//! nothing to the workspace's supply-chain trust base.
//!
//! Findings can be rendered as text, JSON, or SARIF 2.1.0 ([`report`]);
//! pre-existing debt is ratcheted through a committed baseline file
//! ([`baseline`]); `--changed` restricts reporting to files differing
//! from a base ref ([`changed`]).
//!
//! `cargo xtask bench` runs the tracked benchmark pipeline ([`bench`]):
//! the simulator throughput probe, optionally the Criterion suite, and a
//! regression gate against the committed `BENCH_baseline.json`.

pub mod baseline;
pub mod bench;
pub mod changed;
pub mod lexer;
pub mod lint;
pub mod report;
pub mod rules;
pub mod syntax;
