//! Workspace automation for stadvs: domain lints and the bench pipeline.
//!
//! `cargo xtask lint` enforces five invariants that clippy cannot express
//! (see [`rules::RULES`]): epsilon-safe float comparisons, panic-free
//! guarantee crates, documented governor safety arguments, cast-free
//! claims arithmetic, and allocation-free simulator loops. The
//! implementation is dependency-free on purpose — a hand-rolled lexer
//! ([`lexer`]) rather than a parser crate — so the gate itself adds
//! nothing to the workspace's supply-chain trust base.
//!
//! `cargo xtask bench` runs the tracked benchmark pipeline ([`bench`]):
//! the simulator throughput probe, optionally the Criterion suite, and a
//! regression gate against the committed `BENCH_baseline.json`.

pub mod bench;
pub mod lexer;
pub mod lint;
pub mod report;
pub mod rules;
