//! Violation data model and the human/JSON/SARIF renderers.

use std::fmt;

use crate::rules::RULES;

/// Synthetic rule ids the linter can report beyond [`RULES`]: dead allow
/// directives and stale baseline entries. They appear in SARIF rule
/// metadata so every result's `ruleId` resolves.
pub const SYNTHETIC_RULES: &[(&str, &str)] = &[
    (
        "unknown-allow",
        "an xtask:allow directive names a rule the linter does not know — \
         a typo here silently disables the gate",
    ),
    (
        "stale-baseline",
        "a baseline entry allows more violations than remain — ratchet \
         down with `cargo xtask lint --write-baseline`",
    ),
];

/// One finding, anchored to a workspace-relative path and 1-based span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule name (one of [`crate::rules::RULES`] or
    /// [`SYNTHETIC_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
    /// Violations suppressed by the committed baseline file.
    pub baselined: usize,
    /// In `--changed` mode, how many changed files the report was
    /// restricted to.
    pub files_changed: Option<usize>,
}

impl LintReport {
    /// Whether the run found nothing (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        let scanned = match self.files_changed {
            Some(changed) => format!("{} file(s) scanned ({changed} changed)", self.files_scanned),
            None => format!("{} file(s) scanned", self.files_scanned),
        };
        let baselined = if self.baselined > 0 {
            format!(", {} baselined", self.baselined)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "{scanned}, {} violation(s){baselined}\n",
            self.violations.len()
        ));
        out
    }

    /// Renders the machine-readable report (stable JSON shape).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        if let Some(changed) = self.files_changed {
            out.push_str(&format!("\"files_changed\":{changed},"));
        }
        out.push_str(&format!("\"violation_count\":{},", self.violations.len()));
        out.push_str(&format!("\"baselined\":{},", self.baselined));
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_string(v.rule),
                json_string(&v.file),
                v.line,
                v.col,
                json_string(&v.message)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders a SARIF 2.1.0 log for GitHub code scanning. Every result's
    /// `ruleId` resolves through `ruleIndex` into the driver's rule
    /// metadata; file URIs are workspace-relative under `%SRCROOT%`.
    pub fn render_sarif(&self) -> String {
        let rule_ids: Vec<(&str, &str)> = RULES
            .iter()
            .map(|r| (r.name, r.summary))
            .chain(SYNTHETIC_RULES.iter().copied())
            .collect();
        let rule_index = |id: &str| rule_ids.iter().position(|(name, _)| *name == id);

        let mut out = String::from("{");
        out.push_str(
            "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
             \"version\":\"2.1.0\",\"runs\":[{",
        );
        out.push_str("\"tool\":{\"driver\":{");
        out.push_str("\"name\":\"stadvs-xtask-lint\",");
        out.push_str(&format!(
            "\"version\":{},",
            json_string(env!("CARGO_PKG_VERSION"))
        ));
        out.push_str("\"informationUri\":\"https://github.com/stadvs/stadvs\",\"rules\":[");
        for (i, (name, summary)) in rule_ids.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Collapse the summaries' continuation-line whitespace.
            let summary = summary.split_whitespace().collect::<Vec<_>>().join(" ");
            out.push_str(&format!(
                "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
                 \"defaultConfiguration\":{{\"level\":\"error\"}}}}",
                json_string(name),
                json_string(&summary)
            ));
        }
        out.push_str("]}},");
        out.push_str("\"columnKind\":\"utf16CodeUnits\",");
        out.push_str("\"results\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"ruleId\":{},", json_string(v.rule)));
            if let Some(idx) = rule_index(v.rule) {
                out.push_str(&format!("\"ruleIndex\":{idx},"));
            }
            out.push_str(&format!(
                "\"level\":\"error\",\"message\":{{\"text\":{}}},\
                 \"locations\":[{{\"physicalLocation\":{{\
                 \"artifactLocation\":{{\"uri\":{},\"uriBaseId\":\"%SRCROOT%\"}},\
                 \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}],\
                 \"partialFingerprints\":{{\"stadvsLintV1\":{}}}}}",
                json_string(&v.message),
                json_string(&v.file),
                v.line.max(1),
                v.col.max(1),
                json_string(&format!("{}:{}:{}", v.rule, v.file, v.line))
            ));
        }
        out.push_str("]}]}");
        out
    }
}

/// Minimal JSON string escaping (the lint is dependency-free by design).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_violation_report() -> LintReport {
        LintReport {
            files_scanned: 2,
            violations: vec![Violation {
                rule: "float-eq",
                file: "crates/sim/src/simulator.rs".into(),
                line: 3,
                col: 7,
                message: "msg".into(),
            }],
            baselined: 0,
            files_changed: None,
        }
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_shape() {
        let json = one_violation_report().render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"violation_count\":1"));
        assert!(json.contains("\"baselined\":0"));
        assert!(json.contains("\"rule\":\"float-eq\""));
        assert!(json.contains("\"line\":3"));
    }

    #[test]
    fn text_report_counts_baselined() {
        let mut report = one_violation_report();
        report.baselined = 4;
        report.files_changed = Some(3);
        let text = report.render_text();
        assert!(text.contains("2 file(s) scanned (3 changed), 1 violation(s), 4 baselined"));
    }

    #[test]
    fn sarif_has_schema_version_and_resolvable_rules() {
        let sarif = one_violation_report().render_sarif();
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("sarif-2.1.0.json"));
        assert!(sarif.contains("\"ruleId\":\"float-eq\""));
        assert!(sarif.contains("\"startLine\":3"));
        // The driver advertises every reportable rule, including the
        // synthetic ones.
        for rule in RULES {
            assert!(
                sarif.contains(&format!("\"id\":\"{}\"", rule.name)),
                "missing rule metadata for {}",
                rule.name
            );
        }
        for (name, _) in SYNTHETIC_RULES {
            assert!(sarif.contains(&format!("\"id\":\"{name}\"")));
        }
    }

    #[test]
    fn sarif_rule_index_points_at_the_rule() {
        let sarif = one_violation_report().render_sarif();
        // float-eq is the first declared rule.
        assert!(sarif.contains("\"ruleId\":\"float-eq\",\"ruleIndex\":0,"));
    }
}
