//! Violation data model and the human/JSON renderers.

use std::fmt;

/// One finding, anchored to a workspace-relative path and 1-based span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule name (one of [`crate::rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// The outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    pub violations: Vec<Violation>,
}

impl LintReport {
    /// Whether the run found nothing (exit code 0).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} file(s) scanned, {} violation(s)\n",
            self.files_scanned,
            self.violations.len()
        ));
        out
    }

    /// Renders the machine-readable report (stable JSON shape).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"violation_count\":{},", self.violations.len()));
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{}}}",
                json_string(v.rule),
                json_string(&v.file),
                v.line,
                v.col,
                json_string(&v.message)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (the lint is dependency-free by design).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn json_report_shape() {
        let report = LintReport {
            files_scanned: 2,
            violations: vec![Violation {
                rule: "float-eq",
                file: "crates/sim/src/simulator.rs".into(),
                line: 3,
                col: 7,
                message: "msg".into(),
            }],
        };
        let json = report.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"violation_count\":1"));
        assert!(json.contains("\"rule\":\"float-eq\""));
        assert!(json.contains("\"line\":3"));
    }
}
