//! `--changed` mode: restrict the report to files differing from a base
//! ref (default `main`) — the fast pre-commit path.
//!
//! The whole workspace is still scanned (cross-file rules like
//! `governor-doc` need the full declaration index, and the scan is
//! cheap); only the *reporting* is filtered. Changed files are the union
//! of `git diff --name-only $(git merge-base <base> HEAD)` (committed,
//! staged and unstaged work) and untracked files, so the mode sees
//! exactly what a review of the branch would.

use std::collections::BTreeSet;
use std::io;
use std::path::Path;
use std::process::Command;

use crate::report::LintReport;

/// Workspace-relative `.rs` paths differing from `base`.
pub fn changed_files(root: &Path, base: &str) -> io::Result<BTreeSet<String>> {
    let merge_base = git(root, &["merge-base", base, "HEAD"])?;
    let merge_base = merge_base.trim();
    if merge_base.is_empty() {
        return Err(io::Error::other(format!(
            "git merge-base {base} HEAD produced no commit"
        )));
    }
    let mut files = BTreeSet::new();
    for list in [
        git(root, &["diff", "--name-only", merge_base])?,
        git(root, &["ls-files", "--others", "--exclude-standard"])?,
    ] {
        for line in list.lines() {
            let path = line.trim();
            if path.ends_with(".rs") {
                files.insert(path.to_string());
            }
        }
    }
    Ok(files)
}

/// Restricts `report` to violations in `changed` files (stale-baseline
/// findings survive only if the baseline file itself changed — debt
/// bookkeeping is a whole-tree concern, not a per-branch one).
pub fn filter_report(report: &mut LintReport, changed: &BTreeSet<String>) {
    report.violations.retain(|v| changed.contains(&v.file));
    report.files_changed = Some(changed.len());
}

fn git(root: &Path, args: &[&str]) -> io::Result<String> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(args)
        .output()
        .map_err(|e| io::Error::other(format!("failed to run git {}: {e}", args.join(" "))))?;
    if !out.status.success() {
        return Err(io::Error::other(format!(
            "git {} failed: {}",
            args.join(" "),
            String::from_utf8_lossy(&out.stderr).trim()
        )));
    }
    String::from_utf8(out.stdout)
        .map_err(|_| io::Error::other("git produced non-UTF-8 output".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Violation;

    #[test]
    fn filter_keeps_only_changed_files() {
        let mut report = LintReport {
            files_scanned: 3,
            violations: vec![
                Violation {
                    rule: "no-panic",
                    file: "crates/sim/src/a.rs".into(),
                    line: 1,
                    col: 1,
                    message: "m".into(),
                },
                Violation {
                    rule: "no-panic",
                    file: "crates/sim/src/b.rs".into(),
                    line: 2,
                    col: 1,
                    message: "m".into(),
                },
            ],
            ..LintReport::default()
        };
        let changed: BTreeSet<String> = ["crates/sim/src/b.rs".to_string()].into();
        filter_report(&mut report, &changed);
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].file, "crates/sim/src/b.rs");
        assert_eq!(report.files_changed, Some(1));
    }
}
