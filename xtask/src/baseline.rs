//! Baseline suppression with ratchet semantics.
//!
//! Pre-existing debt is recorded in a committed baseline file
//! (`xtask/lint-baseline.txt`) instead of being allow-commented at every
//! site: each entry caps how many violations of one rule a file may
//! still contain. New violations (beyond the cap) fail the build, and
//! *fixing* debt also fails the build until the cap is ratcheted down
//! with `cargo xtask lint --write-baseline` — the recorded debt can only
//! shrink, never silently grow or go stale.
//!
//! File format, one entry per line (`#` starts a comment):
//!
//! ```text
//! <rule> <workspace-relative-file> <count>
//! ```

use std::collections::BTreeMap;
use std::io;

use crate::report::{LintReport, Violation};
use crate::rules;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub file: String,
    pub count: usize,
    /// 1-based line in the baseline file (anchors stale-entry findings).
    pub line: usize,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// Parses the baseline format. Unknown rules, malformed lines and
/// duplicate `(rule, file)` entries are hard errors (exit code 2): a
/// broken baseline must never silently stop suppressing.
pub fn parse(text: &str) -> io::Result<Baseline> {
    let mut entries: Vec<BaselineEntry> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        let [rule, file, count] = fields.as_slice() else {
            return Err(bad(format!(
                "baseline line {line}: expected `<rule> <file> <count>`, got `{content}`"
            )));
        };
        if !rules::is_known_rule(rule) {
            return Err(bad(format!(
                "baseline line {line}: unknown rule `{rule}` (known: {})",
                rule_names()
            )));
        }
        let count: usize = count.parse().map_err(|_| {
            bad(format!(
                "baseline line {line}: count `{count}` is not a number"
            ))
        })?;
        if count == 0 {
            return Err(bad(format!(
                "baseline line {line}: a zero-count entry suppresses nothing — delete it"
            )));
        }
        if entries.iter().any(|e| e.rule == *rule && e.file == *file) {
            return Err(bad(format!(
                "baseline line {line}: duplicate entry for `{rule}` in `{file}`"
            )));
        }
        entries.push(BaselineEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            count,
            line,
        });
    }
    Ok(Baseline { entries })
}

/// Applies the baseline to a report: for each entry, up to `count`
/// violations of that rule in that file (lowest lines first — the
/// longest-standing debt) are suppressed and counted in
/// `report.baselined`. An entry whose cap exceeds the surviving
/// violations is *stale* and reported as a `stale-baseline` finding
/// anchored at its line in `baseline_path` — the ratchet.
pub fn apply(report: &mut LintReport, baseline: &Baseline, baseline_path: &str) {
    for entry in &baseline.entries {
        let mut matched = 0usize;
        report.violations.retain(|v| {
            if matched < entry.count && v.rule == entry.rule && v.file == entry.file {
                matched += 1;
                false
            } else {
                true
            }
        });
        report.baselined += matched;
        if matched < entry.count {
            report.violations.push(Violation {
                rule: "stale-baseline",
                file: baseline_path.to_string(),
                line: entry.line,
                col: 1,
                message: format!(
                    "baseline allows {} `{}` violation(s) in {} but only {} \
                     remain — ratchet down with `cargo xtask lint --write-baseline`",
                    entry.count, entry.rule, entry.file, matched
                ),
            });
        }
    }
    report.violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
}

/// Renders a fresh baseline from a report's (allow-filtered, pre-baseline)
/// violations. Synthetic findings are never baselined — a dead allow
/// directive or stale entry must be fixed, not recorded as debt.
pub fn render(report: &LintReport) -> String {
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for v in &report.violations {
        if rules::is_known_rule(v.rule) {
            *counts.entry((v.rule, v.file.as_str())).or_insert(0) += 1;
        }
    }
    let mut out = String::from(
        "# Lint baseline — pre-existing debt, ratcheted (see DESIGN.md §12).\n\
         # Format: <rule> <workspace-relative-file> <count>\n\
         # Regenerate (only ever downward) with: cargo xtask lint --write-baseline\n",
    );
    for ((rule, file), count) in &counts {
        out.push_str(&format!("{rule} {file} {count}\n"));
    }
    out
}

fn rule_names() -> String {
    rules::RULES
        .iter()
        .map(|r| r.name)
        .collect::<Vec<_>>()
        .join(", ")
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(rule: &'static str, file: &str, line: usize) -> Violation {
        Violation {
            rule,
            file: file.to_string(),
            line,
            col: 1,
            message: "m".into(),
        }
    }

    fn report(violations: Vec<Violation>) -> LintReport {
        LintReport {
            files_scanned: 1,
            violations,
            ..LintReport::default()
        }
    }

    #[test]
    fn parses_entries_and_comments() {
        let b = parse(
            "# header\n\
             no-panic crates/sim/src/a.rs 2\n\
             \n\
             float-eq crates/core/src/b.rs 1  # trailing note\n",
        )
        .unwrap();
        assert_eq!(b.entries.len(), 2);
        assert_eq!(b.entries[0].count, 2);
        assert_eq!(b.entries[1].line, 4);
    }

    #[test]
    fn rejects_unknown_rules_malformed_lines_zero_counts_and_dupes() {
        assert!(parse("no-such-rule f.rs 1\n").is_err());
        assert!(parse("no-panic f.rs\n").is_err());
        assert!(parse("no-panic f.rs many\n").is_err());
        assert!(parse("no-panic f.rs 0\n").is_err());
        assert!(parse("no-panic f.rs 1\nno-panic f.rs 2\n").is_err());
    }

    #[test]
    fn suppresses_up_to_count_lowest_lines_first() {
        let mut r = report(vec![
            v("no-panic", "a.rs", 3),
            v("no-panic", "a.rs", 9),
            v("no-panic", "a.rs", 12),
            v("float-eq", "a.rs", 5),
        ]);
        let b = parse("no-panic a.rs 2\n").unwrap();
        apply(&mut r, &b, "xtask/lint-baseline.txt");
        assert_eq!(r.baselined, 2);
        let remaining: Vec<_> = r.violations.iter().map(|v| (v.rule, v.line)).collect();
        assert_eq!(remaining, vec![("float-eq", 5), ("no-panic", 12)]);
    }

    #[test]
    fn stale_entries_fail_the_ratchet() {
        let mut r = report(vec![v("no-panic", "a.rs", 3)]);
        let b = parse("no-panic a.rs 3\n").unwrap();
        apply(&mut r, &b, "xtask/lint-baseline.txt");
        assert_eq!(r.baselined, 1);
        assert_eq!(r.violations.len(), 1);
        let stale = &r.violations[0];
        assert_eq!(stale.rule, "stale-baseline");
        assert_eq!(stale.file, "xtask/lint-baseline.txt");
        assert_eq!(stale.line, 1);
        assert!(stale.message.contains("only 1"));
    }

    #[test]
    fn exact_match_is_clean() {
        let mut r = report(vec![v("no-panic", "a.rs", 3)]);
        let b = parse("no-panic a.rs 1\n").unwrap();
        apply(&mut r, &b, "xtask/lint-baseline.txt");
        assert!(r.is_clean());
        assert_eq!(r.baselined, 1);
    }

    #[test]
    fn render_groups_and_sorts() {
        let r = report(vec![
            v("no-panic", "b.rs", 1),
            v("no-panic", "a.rs", 1),
            v("no-panic", "a.rs", 7),
        ]);
        let text = render(&r);
        let entries: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(entries, vec!["no-panic a.rs 2", "no-panic b.rs 1"]);
        // Round-trips through the parser.
        assert_eq!(parse(&text).unwrap().entries.len(), 2);
    }

    #[test]
    fn synthetic_rules_are_never_baselined() {
        let r = report(vec![v("unknown-allow", "a.rs", 1)]);
        assert!(!render(&r).contains("unknown-allow"));
    }
}
