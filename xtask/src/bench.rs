//! `cargo xtask bench` — the tracked benchmark pipeline.
//!
//! Builds and runs the `bench_probe` binary (simulator throughput per
//! governor plus an end-to-end `fig1 --quick` probe), which writes
//! `BENCH_sim.json` at the workspace root, then gates the numbers against
//! the committed `BENCH_baseline.json`: any governor/workload pair whose
//! `ns_per_event` exceeds its per-row threshold times the baseline fails
//! the run. Full mode (without `--quick`) also runs the Criterion suite.
//!
//! The default 2x threshold is deliberately loose: the gate runs on
//! shared CI runners and must only catch structural regressions (an
//! accidental allocation or scan in the dispatch loop), not scheduler
//! jitter. The `st-edf`/`st-edf-oa` rows are held to a tighter **1.3x**:
//! after the incremental slack analysis their per-event cost is dominated
//! by pruned cache-warm sweeps, so even a modest regression there means
//! the pruning or caching broke — exactly what the gate exists to catch.
//! The simple-governor rows (`no-dvs`, `static-edf`, `lpps-edf`,
//! `cc-edf`) are tight as well: after the data-oriented queue rework
//! their cost *is* the engine's fixed per-event path, so a blown ratio
//! there means the queue or dispatch loop structurally regressed.

use std::fmt::Write as _;
use std::path::Path;
use std::process::Command;

/// Maximum tolerated `ns_per_event` ratio versus the baseline for one
/// record. The slack-analysis governors get the tight bound (see the
/// module doc), as do the `kernel` row — the facade's event dispatch
/// must not drift over the direct engine drive — and the simple
/// governors, whose cost after the data-oriented rework is the engine's
/// fixed per-event path itself; everything else keeps the loose
/// structural-only bound.
fn max_regression(name: &str) -> f64 {
    match name {
        "st-edf" | "st-edf-oa" | "kernel" => 1.3,
        "no-dvs" | "static-edf" | "lpps-edf" | "cc-edf" => 1.3,
        _ => 2.0,
    }
}

/// One `(governor, workload) -> ns/event` measurement from a bench JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub name: String,
    pub workload: String,
    pub ns_per_event: f64,
}

/// Runs the pipeline. `root` is the workspace root; `quick` trims the
/// probe's per-governor budget and skips the Criterion suite.
pub fn run_bench(root: &Path, quick: bool) -> Result<(), String> {
    run_step(
        "build bench_probe",
        Command::new("cargo").current_dir(root).args([
            "build",
            "--release",
            "-p",
            "stadvs-bench",
            "--bin",
            "bench_probe",
        ]),
    )?;
    let mut probe = Command::new(root.join("target/release/bench_probe"));
    probe.current_dir(root);
    if quick {
        probe.arg("--quick");
    }
    run_step("run bench_probe", &mut probe)?;
    if !quick {
        run_step(
            "run criterion suite",
            Command::new("cargo")
                .current_dir(root)
                .args(["bench", "-p", "stadvs-bench"]),
        )?;
    }

    let current_path = root.join("BENCH_sim.json");
    let current = std::fs::read_to_string(&current_path)
        .map_err(|e| format!("read {}: {e}", current_path.display()))?;
    let baseline_path = root.join("BENCH_baseline.json");
    if !baseline_path.exists() {
        eprintln!(
            "bench: no {} — skipping the regression gate (commit one by \
             copying a trusted BENCH_sim.json)",
            baseline_path.display()
        );
        return Ok(());
    }
    let baseline = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
    let report = gate(&parse_records(&baseline), &parse_records(&current));
    eprint!("{}", report.text);
    if report.failed {
        Err("bench regression gate failed".to_string())
    } else {
        Ok(())
    }
}

fn run_step(what: &str, cmd: &mut Command) -> Result<(), String> {
    eprintln!("bench: {what}...");
    let status = cmd.status().map_err(|e| format!("{what}: {e}"))?;
    if status.success() {
        Ok(())
    } else {
        Err(format!("{what}: exited with {status}"))
    }
}

/// The outcome of comparing current measurements against the baseline.
pub struct GateReport {
    pub failed: bool,
    pub text: String,
}

/// Compares every baseline record against the current run. A missing
/// current record fails (the probe lineup must not silently shrink);
/// records the baseline does not know are reported but pass.
pub fn gate(baseline: &[BenchRecord], current: &[BenchRecord]) -> GateReport {
    let mut text = String::new();
    let mut failed = false;
    for b in baseline {
        let cur = current
            .iter()
            .find(|c| c.name == b.name && c.workload == b.workload);
        match cur {
            None => {
                failed = true;
                let _ = writeln!(
                    text,
                    "FAIL {:<12} {:<10} missing from the current run",
                    b.name, b.workload
                );
            }
            Some(c) => {
                let ratio = c.ns_per_event / b.ns_per_event;
                let verdict = if ratio > max_regression(&b.name) {
                    failed = true;
                    "FAIL"
                } else {
                    "ok  "
                };
                let _ = writeln!(
                    text,
                    "{verdict} {:<12} {:<10} {:>9.1} ns/event vs baseline {:>9.1} ({:.2}x)",
                    c.name, c.workload, c.ns_per_event, b.ns_per_event, ratio
                );
            }
        }
    }
    for c in current {
        if !baseline
            .iter()
            .any(|b| b.name == c.name && b.workload == c.workload)
        {
            let _ = writeln!(
                text,
                "new  {:<12} {:<10} {:>9.1} ns/event (no baseline)",
                c.name, c.workload, c.ns_per_event
            );
        }
    }
    GateReport { failed, text }
}

/// Extracts the governor records from a bench JSON. Each record sits on
/// its own line (the probe writes them that way on purpose), so a
/// line-oriented scan suffices — no JSON dependency.
pub fn parse_records(json: &str) -> Vec<BenchRecord> {
    json.lines()
        .filter(|l| l.contains("\"ns_per_event\""))
        .filter_map(|l| {
            Some(BenchRecord {
                name: field_str(l, "name")?,
                workload: field_str(l, "workload")?,
                ns_per_event: field_num(l, "ns_per_event")?,
            })
        })
        .collect()
}

/// The string value of `"key": "value"` on the line, if present.
fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// The numeric value of `"key": 123.456` on the line, if present.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = line.split(&format!("\"{key}\":")).nth(1)?;
    let value: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    value.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "    { \"name\": \"st-edf\", \"workload\": \"synthetic\", \
        \"events\": 5566, \"reps\": 4, \"ns_per_event\": 2259.057, \
        \"events_per_sec\": 442662.501, \"allocs_per_run\": 31, \"bytes_per_run\": 451106 },";

    fn rec(name: &str, workload: &str, ns: f64) -> BenchRecord {
        BenchRecord {
            name: name.to_string(),
            workload: workload.to_string(),
            ns_per_event: ns,
        }
    }

    #[test]
    fn parses_probe_output_lines() {
        let json = format!("{{\n  \"governors\": [\n{LINE}\n  ]\n}}\n");
        let records = parse_records(&json);
        assert_eq!(records, vec![rec("st-edf", "synthetic", 2259.057)]);
    }

    #[test]
    fn ignores_non_record_lines() {
        assert!(parse_records("{\n  \"schema\": \"stadvs-bench-sim-v1\",\n}\n").is_empty());
    }

    #[test]
    fn gate_passes_within_threshold() {
        let base = vec![rec("a", "w", 100.0)];
        let cur = vec![rec("a", "w", 199.0)];
        let report = gate(&base, &cur);
        assert!(!report.failed, "{}", report.text);
        assert!(report.text.contains("ok"));
    }

    #[test]
    fn gate_fails_beyond_threshold() {
        let base = vec![rec("a", "w", 100.0)];
        let cur = vec![rec("a", "w", 201.0)];
        let report = gate(&base, &cur);
        assert!(report.failed);
        assert!(report.text.contains("FAIL"));
    }

    #[test]
    fn slack_governor_rows_use_the_tight_threshold() {
        // 1.5x is fine for ordinary rows but fails the tight-bound rows:
        // the slack governors, the kernel microbench, and the simple
        // governors whose cost is the engine's fixed per-event path.
        for name in [
            "st-edf",
            "st-edf-oa",
            "kernel",
            "no-dvs",
            "static-edf",
            "lpps-edf",
            "cc-edf",
        ] {
            let base = vec![rec(name, "w", 100.0)];
            let report = gate(&base, &[rec(name, "w", 150.0)]);
            assert!(report.failed, "{name}: {}", report.text);
            let report = gate(&base, &[rec(name, "w", 129.0)]);
            assert!(!report.failed, "{name}: {}", report.text);
        }
        let base = vec![rec("edf-only", "w", 100.0)];
        let report = gate(&base, &[rec("edf-only", "w", 150.0)]);
        assert!(!report.failed, "{}", report.text);
    }

    #[test]
    fn gate_fails_on_missing_record() {
        let base = vec![rec("a", "w", 100.0)];
        let report = gate(&base, &[]);
        assert!(report.failed);
        assert!(report.text.contains("missing"));
    }

    #[test]
    fn new_records_pass_but_are_reported() {
        let base = vec![rec("a", "w", 100.0)];
        let cur = vec![rec("a", "w", 100.0), rec("b", "w", 5.0)];
        let report = gate(&base, &cur);
        assert!(!report.failed);
        assert!(report.text.contains("new"));
    }
}
