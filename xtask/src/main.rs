//! `cargo xtask` — workspace automation entry point.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::bench::run_bench;
use xtask::lint::lint_workspace;
use xtask::rules::RULES;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench") => bench(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask lint  [--json] [--list-rules] [--root <dir>]
       cargo xtask bench [--quick]

lint: runs the workspace's domain lints. Exits 0 when clean, 1 on
violations.

  --json        machine-readable report on stdout
  --list-rules  print the rule names and summaries, then exit
  --root <dir>  lint a different workspace root (default: this workspace)

bench: runs the simulator throughput probe (writes BENCH_sim.json), the
Criterion suite (skipped with --quick), and fails on a >2x ns/event
regression against the committed BENCH_baseline.json.

  --quick       short per-governor budget, no Criterion suite
";

fn bench(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    match run_bench(&root, quick) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: the xtask crate lives one level below it.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

fn lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => {
                for rule in RULES {
                    println!("{}: {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match iter.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    let report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
