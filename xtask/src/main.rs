//! `cargo xtask` — workspace automation entry point.
//!
//! Exit codes are part of the CLI contract (CI branches on them):
//! 0 = clean, 1 = violations found, 2 = internal error (bad usage,
//! unreadable workspace, malformed baseline, git failure).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline;
use xtask::bench::run_bench;
use xtask::changed;
use xtask::lint::lint_workspace;
use xtask::rules::RULES;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench") => bench(&args[1..]),
        _ => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: cargo xtask lint  [--json | --sarif] [--list-rules] [--root <dir>]
                         [--baseline <file> | --no-baseline]
                         [--write-baseline] [--changed] [--base <ref>]
       cargo xtask bench [--quick]

lint: runs the workspace's domain lints. Exit codes: 0 clean, 1
violations, 2 internal error (bad usage, unreadable workspace,
malformed baseline).

  --json             machine-readable report on stdout
  --sarif            SARIF 2.1.0 log on stdout (GitHub code scanning)
  --list-rules       print the rule names and summaries, then exit
  --root <dir>       lint a different workspace root (default: this
                     workspace)
  --baseline <file>  baseline file (default: <root>/xtask/lint-baseline.txt;
                     a missing default is treated as empty)
  --no-baseline      ignore the baseline — report all debt
  --write-baseline   rewrite the baseline from the current violations
                     (the ratchet: run after fixing debt), then exit 0
  --changed          report only files differing from the base ref (the
                     whole workspace is still scanned for cross-file
                     rules); incompatible with --write-baseline
  --base <ref>       base ref for --changed (default: main)

bench: runs the simulator throughput probe (writes BENCH_sim.json), the
Criterion suite (skipped with --quick), and fails on a >2x ns/event
regression against the committed BENCH_baseline.json.

  --quick       short per-governor budget, no Criterion suite
";

fn bench(args: &[String]) -> ExitCode {
    let mut quick = false;
    for arg in args {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let root = workspace_root();
    match run_bench(&root, quick) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root: the xtask crate lives one level below it.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits inside the workspace")
        .to_path_buf()
}

struct LintOpts {
    json: bool,
    sarif: bool,
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    changed: bool,
    base: String,
}

fn parse_lint_args(args: &[String]) -> Result<Option<LintOpts>, String> {
    let mut opts = LintOpts {
        json: false,
        sarif: false,
        root: None,
        baseline: None,
        no_baseline: false,
        write_baseline: false,
        changed: false,
        base: "main".to_string(),
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--sarif" => opts.sarif = true,
            "--list-rules" => return Ok(None),
            "--root" => match iter.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return Err("--root needs a directory argument".into()),
            },
            "--baseline" => match iter.next() {
                Some(file) => opts.baseline = Some(PathBuf::from(file)),
                None => return Err("--baseline needs a file argument".into()),
            },
            "--no-baseline" => opts.no_baseline = true,
            "--write-baseline" => opts.write_baseline = true,
            "--changed" => opts.changed = true,
            "--base" => match iter.next() {
                Some(r) => opts.base = r.clone(),
                None => return Err("--base needs a ref argument".into()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.json && opts.sarif {
        return Err("--json and --sarif are mutually exclusive".into());
    }
    if opts.no_baseline && opts.baseline.is_some() {
        return Err("--no-baseline and --baseline are mutually exclusive".into());
    }
    if opts.write_baseline && opts.changed {
        return Err(
            "--write-baseline records whole-tree debt and cannot be combined with --changed".into(),
        );
    }
    Ok(Some(opts))
}

fn lint(args: &[String]) -> ExitCode {
    let opts = match parse_lint_args(args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            for rule in RULES {
                println!("{}: {}", rule.name, rule.summary);
            }
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let root = opts.root.clone().unwrap_or_else(workspace_root);
    let mut report = match lint_workspace(&root) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };

    // Baseline resolution: an explicitly named file must exist; the
    // default path is treated as an empty baseline when absent.
    let default_baseline = root.join("xtask").join("lint-baseline.txt");
    let (baseline_path, must_exist) = match &opts.baseline {
        Some(path) => (path.clone(), true),
        None => (default_baseline, false),
    };
    let baseline_rel = baseline_path
        .strip_prefix(&root)
        .unwrap_or(&baseline_path)
        .to_string_lossy()
        .replace('\\', "/");

    if opts.write_baseline {
        let text = baseline::render(&report);
        if let Some(parent) = baseline_path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        if let Err(err) = fs::write(&baseline_path, &text) {
            eprintln!("error: cannot write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        let entries = text.lines().filter(|l| !l.starts_with('#')).count();
        println!("wrote {} ({entries} entr(ies))", baseline_path.display());
        return ExitCode::SUCCESS;
    }

    if !opts.no_baseline {
        match fs::read_to_string(&baseline_path) {
            Ok(text) => {
                let parsed = match baseline::parse(&text) {
                    Ok(parsed) => parsed,
                    Err(err) => {
                        eprintln!("error: {err}");
                        return ExitCode::from(2);
                    }
                };
                baseline::apply(&mut report, &parsed, &baseline_rel);
            }
            Err(err) if err.kind() == std::io::ErrorKind::NotFound && !must_exist => {}
            Err(err) => {
                eprintln!("error: cannot read {}: {err}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    }

    if opts.changed {
        let changed_set = match changed::changed_files(&root, &opts.base) {
            Ok(set) => set,
            Err(err) => {
                eprintln!("error: {err}");
                return ExitCode::from(2);
            }
        };
        changed::filter_report(&mut report, &changed_set);
    }

    if opts.json {
        println!("{}", report.render_json());
    } else if opts.sarif {
        println!("{}", report.render_sarif());
    } else {
        print!("{}", report.render_text());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
