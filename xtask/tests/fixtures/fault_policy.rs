//! Seeded violations for the `fault-policy-exhaustive` rule. This file is
//! lint-test data, never compiled into the workspace.

/// VIOLATION (line 8): the `_` arm swallows future policy variants.
pub fn dispatch(policy: OverrunPolicy) -> u8 {
    match policy {
        OverrunPolicy::Abort => 0,
        _ => 1,
    }
}

/// VIOLATION (line 16): a lone binding is a catch-all in disguise.
pub fn resolve(plan: &FaultPlan, declared: OverrunPolicy) -> Action {
    match plan.resolve_policy(declared) {
        OverrunPolicy::Abort => Action::Drop,
        fallback => Action::Keep(fallback),
    }
}

/// NOT a violation: every variant named, no wildcard.
pub fn exhaustive(policy: OverrunPolicy) -> u8 {
    match policy {
        OverrunPolicy::Abort => 0,
        OverrunPolicy::CompleteAtMax => 1,
        OverrunPolicy::SkipNext => 2,
    }
}

/// NOT a violation: a wildcard over some *other* enum stays legal even
/// when an arm body mentions the policy type.
pub fn unrelated(mode: Mode) -> OverrunPolicy {
    match mode {
        Mode::Strict => OverrunPolicy::Abort,
        _ => OverrunPolicy::CompleteAtMax,
    }
}

/// NOT a violation: suppressed with a reasoned allow directive.
pub fn sanctioned(policy: OverrunPolicy) -> bool {
    match policy {
        OverrunPolicy::Abort => true,
        // xtask:allow(fault-policy-exhaustive): predicate only cares about Abort
        _ => false,
    }
}
