//! Seeded violations for the `nondet-iter` rule. This file is lint-test
//! data, never compiled into the workspace.

use std::collections::{BTreeMap, HashMap, HashSet as Seen};

/// VIOLATION (line 9): for-loop over a hash map leaks hash order.
pub fn sum_loop(map: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_id, v) in map {
        total += v;
    }
    total
}

/// VIOLATION (line 17): `.iter()` on an aliased hash set.
pub fn first_seen(seen: &Seen<u32>) -> Option<u32> {
    seen.iter().next().copied()
}

/// NOT a violation: BTreeMap iterates in key order.
pub fn ordered(map: &BTreeMap<u32, f64>) -> usize {
    map.keys().count()
}

/// NOT a violation: keyed access into a hash map is deterministic.
pub fn lookup(map: &HashMap<u32, f64>, id: u32) -> f64 {
    map.get(&id).copied().unwrap_or(0.0)
}

/// NOT a violation: suppressed with a reasoned allow directive.
pub fn count(map: &HashMap<u32, f64>) -> usize {
    // xtask:allow(nondet-iter): count is order-insensitive
    map.keys().count()
}
