//! Seeded violations for the `governor-doc` rule. This file is lint-test
//! data, never compiled into the workspace.

/// A governor whose doc comment says nothing about why it is safe.
pub struct Undocumented;

// VIOLATION (line 8): `impl Governor` for a type with no safety argument.
impl Governor for Undocumented {
    fn name(&self) -> &str {
        "undocumented"
    }
}

/// Runs at full speed.
///
/// Deadline safety: full speed is the feasibility baseline, so any EDF
/// schedulable set stays schedulable.
pub struct Documented;

// NOT a violation: the declaration above names its safety argument.
impl Governor for Documented {
    fn name(&self) -> &str {
        "documented"
    }
}
