//! Seeded violations for the `unordered-float-reduction` rule. This file
//! is lint-test data, never compiled into the workspace.
//!
//! Hash iteration itself is `nondet-iter`'s concern; it is suppressed
//! file-wide so the spans below stay single-rule.

// xtask:allow-file(nondet-iter): this fixture exercises reductions only

use std::collections::HashMap;

/// VIOLATION (line 13): f64 sum over hash-map values.
pub fn energy(map: &HashMap<u32, f64>) -> f64 {
    map.values().map(|v| v * 2.0).sum::<f64>()
}

/// VIOLATION (line 18): reduce over a parallel iterator.
pub fn par_total(values: &[f64]) -> f64 {
    values.par_iter().copied().reduce(|| 0.0, |a, b| a + b)
}

/// NOT a violation: slice iteration is ordered.
pub fn plain(values: &[f64]) -> f64 {
    values.iter().sum::<f64>()
}

/// NOT a violation: integer sums are associative (turbofish exempt).
pub fn count(ids: &[u32]) -> u64 {
    ids.par_iter().map(|x| u64::from(*x)).sum::<u64>()
}

/// NOT a violation: min/max folds are order-insensitive.
pub fn peak(values: &[f64]) -> f64 {
    values.par_iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// NOT a violation: suppressed with a reasoned allow directive.
pub fn allowed(map: &HashMap<u32, f64>) -> f64 {
    // xtask:allow(unordered-float-reduction): weights sum to 1 by construction
    map.values().sum::<f64>()
}
