//! Seeded violations for the `no-panic` rule. This file is lint-test data,
//! never compiled into the workspace.

/// VIOLATION (line 6): `unwrap()` in guarantee-critical library code.
pub fn first(values: &[f64]) -> f64 {
    *values.first().unwrap()
}

/// VIOLATION (line 11): `expect()` in guarantee-critical library code.
pub fn second(values: &[f64]) -> f64 {
    *values.get(1).expect("at least two values")
}

/// VIOLATION (line 16): `panic!` in guarantee-critical library code.
pub fn refuse() {
    panic!("refused");
}

/// NOT a violation: `unwrap_or` is a total method, not a panic site.
pub fn first_or_zero(values: &[f64]) -> f64 {
    values.first().copied().unwrap_or(0.0)
}

/// NOT a violation: `debug_assert!` is a sanctioned contract check.
pub fn checked(value: f64) -> f64 {
    debug_assert!(value.is_finite());
    value
}

#[cfg(test)]
mod tests {
    /// NOT a violation: panics in test code are idiomatic.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
