//! Seeded violations for the `shared-mut-state` rule. This file is
//! lint-test data, never compiled into the workspace.

use std::sync::OnceLock;

/// VIOLATION (line 7): `static mut` is a data race in waiting.
static mut EVENT_COUNT: u64 = 0;

/// VIOLATION (line 10, twice): lazy global — annotation and constructor.
static TABLE: OnceLock<Vec<f64>> = OnceLock::new();

/// VIOLATION (line 13): lazy_static initializes on first touch.
lazy_static! {
    static ref SPEEDS: Vec<f64> = vec![1.0];
}

/// VIOLATION (line 18): thread-local state varies per thread.
thread_local! {
    static SCRATCH: Vec<u64> = Vec::new();
}

/// NOT a violation: a plain const is immutable and deterministic.
pub const LIMIT: usize = 64;

/// NOT a violation: an eagerly initialized immutable static.
pub static NAMES: [&str; 2] = ["edf", "st-edf"];

/// NOT a violation: suppressed with a reasoned allow directive.
// xtask:allow(shared-mut-state): pure lookup table, initialized once
static CACHE: OnceLock<u64> = OnceLock::new();
