//! Seeded violations for the `wall-clock-in-sim` rule. This file is
//! lint-test data, never compiled into the workspace.

use std::time::SystemTime as Wall;
use std::time::{Duration, Instant};

/// VIOLATION (line 9): Instant::now() reads the host clock.
pub fn stamp() -> Instant {
    Instant::now()
}

/// VIOLATION (line 14): SystemTime::now() through an alias.
pub fn wall() -> Wall {
    Wall::now()
}

/// VIOLATION (line 19): fully pathed call.
pub fn pathed() -> std::time::Instant {
    std::time::Instant::now()
}

/// NOT a violation: `now` as simulated time is the whole point.
pub fn remaining(now: f64, horizon: f64) -> f64 {
    horizon - now
}

/// NOT a violation: Duration construction reads no clock.
pub fn tick() -> Duration {
    Duration::from_secs(1)
}

/// NOT a violation: suppressed with a reasoned allow directive.
pub fn profiled() -> Instant {
    // xtask:allow(wall-clock-in-sim): coarse profiling hook, not sim time
    Instant::now()
}
