//! Seeded violations for the `float-eq` rule. This file is lint-test data,
//! never compiled into the workspace.

/// VIOLATION (line 8): raw `==` between two time-vocabulary operands.
pub fn deadline_reached(deadline: f64, now: f64) -> bool {
    // The next line must be flagged: both operands are float time values.

    deadline == now
}

/// VIOLATION (line 13): `!=` against a float literal.
pub fn speed_changed(speed: f64) -> bool {
    speed != 1.0
}

/// NOT a violation: integer comparison with no float vocabulary.
pub fn same_count(jobs: usize, records: usize) -> bool {
    jobs == records
}

/// NOT a violation: suppressed with a reasoned allow directive.
pub fn exact_point(speed: f64, other: f64) -> bool {
    // xtask:allow(float-eq): operating-point identity is exact by design
    speed == other
}
