//! Seeded violations for the `as-cast` rule. This file is lint-test data,
//! never compiled into the workspace.

/// VIOLATION (line 6, twice): `as f64` on both operands of ledger math.
pub fn mean_claim(total: usize, jobs: usize) -> f64 {
    total as f64 / jobs as f64
}

/// VIOLATION (line 11): float-to-integer truncation in claims arithmetic.
pub fn whole_periods(elapsed: f64, period: f64) -> u64 {
    (elapsed / period) as u64
}

/// NOT a violation: lossless conversion through `From`.
pub fn steps_to_f64(steps: u32) -> f64 {
    f64::from(steps)
}

/// NOT a violation: suppressed with a reasoned allow directive.
pub fn sanctioned(count: usize) -> f64 {
    // xtask:allow(as-cast): single sanctioned lossless count conversion
    count as f64
}
