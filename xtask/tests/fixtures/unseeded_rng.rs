//! Seeded violations for the `unseeded-rng` rule. This file is lint-test
//! data, never compiled into the workspace.

use rand::rngs::OsRng as Entropy;

/// VIOLATION (line 8): thread_rng() seeds from the OS.
pub fn jitter() -> f64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}

/// VIOLATION (line 14): from_entropy() draws OS entropy.
pub fn fresh() -> StdRng {
    StdRng::from_entropy()
}

/// VIOLATION (line 19): aliased OsRng is entropy-backed.
pub fn os_backed() -> u64 {
    Entropy.next_u64()
}

/// VIOLATION (line 24): rand::random() is thread-local entropy in disguise.
pub fn coin() -> bool {
    rand::random()
}

/// NOT a violation: explicitly seeded generators replay bit-identically.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// NOT a violation: `.random()` is a method on an explicit generator.
pub fn draw(rng: &mut StdRng) -> f64 {
    rng.random()
}

/// NOT a violation: suppressed with a reasoned allow directive.
pub fn salted() -> u64 {
    // xtask:allow(unseeded-rng): salt only perturbs log file names
    rand::thread_rng().next_u64()
}
