//! SARIF smoke test: the emitted log is well-formed JSON and carries the
//! structure GitHub code scanning requires (schema, version, driver
//! rules, resolvable ruleIds, physical locations).
//!
//! The workspace is dependency-free by design, so well-formedness is
//! checked with a minimal recursive-descent JSON reader rather than a
//! parser crate — it validates syntax only, which is exactly what a
//! smoke test needs.

use xtask::lint::{analyze, SourceFile};
use xtask::report::SYNTHETIC_RULES;
use xtask::rules::RULES;

/// A fixture with violations from several rules, so the SARIF log has
/// results to check.
fn dirty_report() -> xtask::report::LintReport {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, f64>) -> f64 {
    let t = std::time::Instant::now();
    m.values().sum::<f64>()
}
";
    analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        src,
    )])
}

#[test]
fn sarif_log_is_well_formed_json() {
    let report = dirty_report();
    assert!(!report.is_clean(), "fixture must produce results");
    let sarif = report.render_sarif();
    parse_json(&sarif).unwrap_or_else(|e| panic!("invalid JSON at byte {e}: {sarif}"));
    // The empty log must be valid too.
    let empty = analyze(&[]).render_sarif();
    parse_json(&empty).unwrap_or_else(|e| panic!("invalid JSON at byte {e}: {empty}"));
}

#[test]
fn sarif_log_has_required_github_structure() {
    let sarif = dirty_report().render_sarif();
    for key in [
        "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\"",
        "\"version\":\"2.1.0\"",
        "\"runs\":[{",
        "\"tool\":{\"driver\":{",
        "\"name\":\"stadvs-xtask-lint\"",
        "\"rules\":[",
        "\"results\":[",
        "\"physicalLocation\"",
        "\"artifactLocation\"",
        "\"uriBaseId\":\"%SRCROOT%\"",
        "\"startLine\"",
        "\"partialFingerprints\"",
    ] {
        assert!(sarif.contains(key), "missing {key} in {sarif}");
    }
}

#[test]
fn every_result_rule_id_resolves_to_driver_metadata() {
    let sarif = dirty_report().render_sarif();
    // Each declared rule appears exactly once in the driver metadata.
    for rule in RULES {
        assert_eq!(
            sarif.matches(&format!("\"id\":\"{}\"", rule.name)).count(),
            1,
            "rule {} must appear once",
            rule.name
        );
    }
    for (name, _) in SYNTHETIC_RULES {
        assert_eq!(sarif.matches(&format!("\"id\":\"{name}\"")).count(), 1);
    }
    // Results carry a ruleIndex pointing into that array.
    assert!(sarif.contains("\"ruleIndex\":"), "{sarif}");
}

// ---------------------------------------------------------------------
// Minimal JSON syntax checker. Returns Err(byte offset) on the first
// syntax error.
// ---------------------------------------------------------------------

fn parse_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut i = 0usize;
    parse_value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i == b.len() {
        Ok(())
    } else {
        Err(i)
    }
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), usize> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => parse_object(b, i),
        Some(b'[') => parse_array(b, i),
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, b"true"),
        Some(b'f') => parse_lit(b, i, b"false"),
        Some(b'n') => parse_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, i),
        _ => Err(*i),
    }
}

fn parse_object(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // {
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        parse_string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(*i);
        }
        *i += 1;
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn parse_array(b: &[u8], i: &mut usize) -> Result<(), usize> {
    *i += 1; // [
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        parse_value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(*i),
        }
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), usize> {
    if b.get(*i) != Some(&b'"') {
        return Err(*i);
    }
    *i += 1;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => match b.get(*i + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 2,
                Some(b'u') => {
                    if b.len() < *i + 6 || !b[*i + 2..*i + 6].iter().all(u8::is_ascii_hexdigit) {
                        return Err(*i);
                    }
                    *i += 6;
                }
                _ => return Err(*i),
            },
            0x00..=0x1f => return Err(*i),
            _ => *i += 1,
        }
    }
    Err(*i)
}

fn parse_number(b: &[u8], i: &mut usize) -> Result<(), usize> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    while b.get(*i).is_some_and(u8::is_ascii_digit) {
        *i += 1;
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
    }
    if *i == start {
        Err(*i)
    } else {
        Ok(())
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), usize> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(*i)
    }
}
