//! End-to-end exit-code contract of `cargo xtask lint`, driven against
//! throwaway fake workspaces: 0 = clean, 1 = violations, 2 = internal
//! error. CI branches on these codes, so they are pinned here.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn xtask_bin() -> &'static str {
    env!("CARGO_BIN_EXE_xtask")
}

/// Creates a unique throwaway workspace root under the target tmp dir.
fn fake_workspace(tag: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("stadvs-xtask-cli-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    for (rel, contents) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, contents).unwrap();
    }
    root
}

fn run(args: &[&str]) -> Output {
    Command::new(xtask_bin())
        .args(args)
        .output()
        .expect("xtask binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("xtask exits normally")
}

const CLEAN: &str = "pub fn ok(a: usize, b: usize) -> bool { a == b }\n";
const DIRTY: &str = "pub fn t() { let _ = std::time::Instant::now(); }\n";

#[test]
fn clean_workspace_exits_zero() {
    let root = fake_workspace("clean", &[("crates/sim/src/lib.rs", CLEAN)]);
    let out = run(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 violation(s)"), "{stdout}");
}

#[test]
fn violations_exit_one() {
    let root = fake_workspace("dirty", &[("crates/sim/src/lib.rs", DIRTY)]);
    let out = run(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("wall-clock-in-sim"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    for args in [
        &["lint", "--no-such-flag"][..],
        &["lint", "--json", "--sarif"][..],
        &["lint", "--changed", "--write-baseline"][..],
        &["lint", "--baseline"][..],
        &["no-such-subcommand"][..],
    ] {
        let out = run(args);
        assert_eq!(code(&out), 2, "{args:?}: {out:?}");
    }
}

#[test]
fn missing_explicit_baseline_exits_two_but_missing_default_is_fine() {
    let root = fake_workspace("nobase", &[("crates/sim/src/lib.rs", CLEAN)]);
    let out = run(&[
        "lint",
        "--root",
        root.to_str().unwrap(),
        "--baseline",
        root.join("nope.txt").to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
    // No xtask/lint-baseline.txt in the fake root — still clean.
    let out = run(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn malformed_baseline_exits_two() {
    let root = fake_workspace(
        "badbase",
        &[
            ("crates/sim/src/lib.rs", CLEAN),
            ("xtask/lint-baseline.txt", "no-such-rule a.rs 1\n"),
        ],
    );
    let out = run(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(code(&out), 2, "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule"), "{stderr}");
}

#[test]
fn baseline_suppression_exits_zero_and_stale_exits_one() {
    let files = &[
        ("crates/sim/src/lib.rs", DIRTY),
        (
            "xtask/lint-baseline.txt",
            "wall-clock-in-sim crates/sim/src/lib.rs 1\n",
        ),
    ];
    let root = fake_workspace("based", files);
    let out = run(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 baselined"), "{stdout}");

    // --no-baseline reports the debt again.
    let out = run(&["lint", "--root", root.to_str().unwrap(), "--no-baseline"]);
    assert_eq!(code(&out), 1, "{out:?}");

    // Fix the violation but keep the baseline entry → stale, exit 1.
    fs::write(root.join("crates/sim/src/lib.rs"), CLEAN).unwrap();
    let out = run(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale-baseline"), "{stdout}");
}

#[test]
fn write_baseline_records_debt_then_lint_is_clean() {
    let root = fake_workspace("write", &[("crates/sim/src/lib.rs", DIRTY)]);
    let out = run(&["lint", "--root", root.to_str().unwrap(), "--write-baseline"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let text = fs::read_to_string(root.join("xtask/lint-baseline.txt")).unwrap();
    assert!(
        text.contains("wall-clock-in-sim crates/sim/src/lib.rs 1"),
        "{text}"
    );
    let out = run(&["lint", "--root", root.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{out:?}");
}

#[test]
fn changed_mode_reports_only_changed_files() {
    let root = fake_workspace(
        "changed",
        &[
            ("crates/sim/src/lib.rs", CLEAN),
            ("crates/core/src/lib.rs", CLEAN),
        ],
    );
    let git = |args: &[&str]| {
        let out = Command::new("git")
            .arg("-C")
            .arg(&root)
            .args(args)
            .output()
            .expect("git runs");
        assert!(out.status.success(), "git {args:?}: {out:?}");
    };
    git(&["init", "-q"]);
    git(&["config", "user.email", "t@example.com"]);
    git(&["config", "user.name", "t"]);
    git(&["add", "-A"]);
    git(&["commit", "-qm", "seed"]);

    // An untracked dirty file is "changed" relative to HEAD.
    fs::create_dir_all(root.join("crates/power/src")).unwrap();
    fs::write(root.join("crates/power/src/lib.rs"), DIRTY).unwrap();
    let out = run(&[
        "lint",
        "--root",
        root.to_str().unwrap(),
        "--changed",
        "--base",
        "HEAD",
    ]);
    assert_eq!(code(&out), 1, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("(1 changed)"), "{stdout}");
    assert!(stdout.contains("crates/power/src/lib.rs"), "{stdout}");

    // A bad base ref is an internal error.
    let out = run(&[
        "lint",
        "--root",
        root.to_str().unwrap(),
        "--changed",
        "--base",
        "no-such-ref",
    ]);
    assert_eq!(code(&out), 2, "{out:?}");
}

#[test]
fn sarif_and_json_outputs_carry_the_violation() {
    let root = fake_workspace("formats", &[("crates/sim/src/lib.rs", DIRTY)]);
    let out = run(&["lint", "--root", root.to_str().unwrap(), "--sarif"]);
    assert_eq!(code(&out), 1, "{out:?}");
    let sarif = String::from_utf8_lossy(&out.stdout);
    assert!(
        sarif.contains("\"ruleId\":\"wall-clock-in-sim\""),
        "{sarif}"
    );

    let out = run(&["lint", "--root", root.to_str().unwrap(), "--json"]);
    assert_eq!(code(&out), 1, "{out:?}");
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"rule\":\"wall-clock-in-sim\""), "{json}");
}

/// `--list-rules` is informational and always exits 0.
#[test]
fn list_rules_exits_zero() {
    let out = run(&["lint", "--list-rules"]);
    assert_eq!(code(&out), 0, "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in ["float-eq", "nondet-iter", "shared-mut-state"] {
        assert!(stdout.contains(rule), "{stdout}");
    }
}
