//! Fixture-based proof that every lint rule flags its seeded violations —
//! and nothing else — with the right spans.
//!
//! Each file under `tests/fixtures/` seeds violations for one rule next to
//! near-miss code that must NOT be flagged (test modules, total methods,
//! reasoned allow directives). Expected columns are derived from the
//! fixture text itself so the assertions stay honest about spans.

use xtask::lint::{analyze, SourceFile};
use xtask::report::Violation;

const FLOAT_EQ: &str = include_str!("fixtures/float_eq.rs");
const NO_PANIC: &str = include_str!("fixtures/no_panic.rs");
const GOVERNOR_DOC: &str = include_str!("fixtures/governor_doc.rs");
const AS_CAST: &str = include_str!("fixtures/as_cast.rs");
const FAULT_POLICY: &str = include_str!("fixtures/fault_policy.rs");
const NONDET_ITER: &str = include_str!("fixtures/nondet_iter.rs");
const UNORDERED_FLOAT: &str = include_str!("fixtures/unordered_float_reduction.rs");
const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const UNSEEDED_RNG: &str = include_str!("fixtures/unseeded_rng.rs");
const SHARED_MUT: &str = include_str!("fixtures/shared_mut_state.rs");

/// 1-based column of the `occurrence`-th `needle` on 1-based `line`.
fn col_of(src: &str, line: usize, needle: &str, occurrence: usize) -> usize {
    let text = src.lines().nth(line - 1).unwrap_or_else(|| {
        panic!("fixture has no line {line}");
    });
    text.match_indices(needle)
        .nth(occurrence - 1)
        .map(|(i, _)| i + 1)
        .unwrap_or_else(|| panic!("line {line} has no occurrence {occurrence} of {needle:?}"))
}

fn spans(violations: &[Violation], rule: &str) -> Vec<(usize, usize)> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.line, v.col))
        .collect()
}

#[test]
fn float_eq_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/workload/src/fixture.rs",
        "workload",
        FLOAT_EQ,
    )]);
    assert_eq!(
        spans(&report.violations, "float-eq"),
        vec![
            (8, col_of(FLOAT_EQ, 8, "==", 1)),
            (13, col_of(FLOAT_EQ, 13, "!=", 1)),
        ],
        "{report:?}"
    );
    // The integer comparison, the allowed line, and everything else must
    // stay clean — two violations total.
    assert_eq!(report.violations.len(), 2, "{report:?}");
}

#[test]
fn no_panic_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        NO_PANIC,
    )]);
    assert_eq!(
        spans(&report.violations, "no-panic"),
        vec![
            (6, col_of(NO_PANIC, 6, "unwrap", 1)),
            (11, col_of(NO_PANIC, 11, "expect", 1)),
            (16, col_of(NO_PANIC, 16, "panic", 1)),
        ],
        "{report:?}"
    );
    assert_eq!(report.violations.len(), 3, "{report:?}");
}

#[test]
fn no_panic_rule_is_scoped_to_guarantee_crates() {
    // The same seeded panics are legal in a non-guarantee crate.
    let report = analyze(&[SourceFile::from_source(
        "crates/experiments/src/fixture.rs",
        "experiments",
        NO_PANIC,
    )]);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn governor_doc_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/baselines/src/fixture.rs",
        "baselines",
        GOVERNOR_DOC,
    )]);
    assert_eq!(
        spans(&report.violations, "governor-doc"),
        vec![(8, col_of(GOVERNOR_DOC, 8, "impl", 1))],
        "{report:?}"
    );
    let v = &report.violations[0];
    assert!(
        v.message.contains("Undocumented"),
        "message must name the type: {}",
        v.message
    );
    // `Documented` states its safety argument and must pass.
    assert_eq!(report.violations.len(), 1, "{report:?}");
}

#[test]
fn as_cast_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/core/src/fixture.rs",
        "core",
        AS_CAST,
    )]);
    assert_eq!(
        spans(&report.violations, "as-cast"),
        vec![
            (6, col_of(AS_CAST, 6, "as", 1)),
            (6, col_of(AS_CAST, 6, "as", 2)),
            (11, col_of(AS_CAST, 11, "as", 1)),
        ],
        "{report:?}"
    );
    // `f64::from` and the allowed cast must stay clean.
    assert_eq!(report.violations.len(), 3, "{report:?}");
}

#[test]
fn fault_policy_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        FAULT_POLICY,
    )]);
    assert_eq!(
        spans(&report.violations, "fault-policy-exhaustive"),
        vec![
            (8, col_of(FAULT_POLICY, 8, "_", 1)),
            (16, col_of(FAULT_POLICY, 16, "fallback", 1)),
        ],
        "{report:?}"
    );
    // The exhaustive match, the unrelated-enum wildcard, and the allowed
    // arm must all stay clean — two violations total.
    assert_eq!(report.violations.len(), 2, "{report:?}");
}

#[test]
fn fault_policy_rule_is_scoped_to_guarantee_crates() {
    let report = analyze(&[SourceFile::from_source(
        "crates/experiments/src/fixture.rs",
        "experiments",
        FAULT_POLICY,
    )]);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn as_cast_rule_is_scoped_to_claims_crates() {
    let report = analyze(&[SourceFile::from_source(
        "crates/workload/src/fixture.rs",
        "workload",
        AS_CAST,
    )]);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn nondet_iter_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        NONDET_ITER,
    )]);
    assert_eq!(
        spans(&report.violations, "nondet-iter"),
        vec![
            (9, col_of(NONDET_ITER, 9, "map", 1)),
            (17, col_of(NONDET_ITER, 17, "iter", 1)),
        ],
        "{report:?}"
    );
    // BTreeMap iteration, keyed access and the allowed count stay clean.
    assert_eq!(report.violations.len(), 2, "{report:?}");
}

#[test]
fn nondet_iter_rule_is_scoped_to_determinism_crates() {
    let report = analyze(&[SourceFile::from_source(
        "crates/cli/src/fixture.rs",
        "cli",
        NONDET_ITER,
    )]);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn unordered_float_reduction_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/experiments/src/fixture.rs",
        "experiments",
        UNORDERED_FLOAT,
    )]);
    assert_eq!(
        spans(&report.violations, "unordered-float-reduction"),
        vec![
            (13, col_of(UNORDERED_FLOAT, 13, "sum", 1)),
            (18, col_of(UNORDERED_FLOAT, 18, "reduce", 1)),
        ],
        "{report:?}"
    );
    // The ordered slice sum, the integer turbofish, the min/max fold and
    // the allowed reduction stay clean.
    assert_eq!(report.violations.len(), 2, "{report:?}");
}

#[test]
fn wall_clock_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        WALL_CLOCK,
    )]);
    assert_eq!(
        spans(&report.violations, "wall-clock-in-sim"),
        vec![
            (9, col_of(WALL_CLOCK, 9, "Instant", 1)),
            (14, col_of(WALL_CLOCK, 14, "Wall", 1)),
            (19, col_of(WALL_CLOCK, 19, "Instant", 1)),
        ],
        "{report:?}"
    );
    // Simulated `now` values, Duration construction and the allowed
    // profiling hook stay clean.
    assert_eq!(report.violations.len(), 3, "{report:?}");
}

#[test]
fn wall_clock_rule_exempts_bench() {
    let report = analyze(&[SourceFile::from_source(
        "crates/bench/src/fixture.rs",
        "bench",
        WALL_CLOCK,
    )]);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn unseeded_rng_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/workload/src/fixture.rs",
        "workload",
        UNSEEDED_RNG,
    )]);
    assert_eq!(
        spans(&report.violations, "unseeded-rng"),
        vec![
            (8, col_of(UNSEEDED_RNG, 8, "thread_rng", 1)),
            (14, col_of(UNSEEDED_RNG, 14, "from_entropy", 1)),
            (19, col_of(UNSEEDED_RNG, 19, "Entropy", 1)),
            (24, col_of(UNSEEDED_RNG, 24, "random", 1)),
        ],
        "{report:?}"
    );
    // Seeded construction, `.random()` on an explicit generator and the
    // allowed salt stay clean.
    assert_eq!(report.violations.len(), 4, "{report:?}");
}

#[test]
fn unseeded_rng_rule_exempts_xtask_and_bench_only() {
    for krate in ["xtask", "bench"] {
        let report = analyze(&[SourceFile::from_source(
            "crates/bench/src/fixture.rs",
            krate,
            UNSEEDED_RNG,
        )]);
        assert!(report.is_clean(), "{krate}: {report:?}");
    }
    // The CLI is not exempt: its workload seeds flow into experiments.
    let report = analyze(&[SourceFile::from_source(
        "crates/cli/src/fixture.rs",
        "cli",
        UNSEEDED_RNG,
    )]);
    assert_eq!(report.violations.len(), 4, "{report:?}");
}

#[test]
fn shared_mut_state_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        SHARED_MUT,
    )]);
    assert_eq!(
        spans(&report.violations, "shared-mut-state"),
        vec![
            (7, col_of(SHARED_MUT, 7, "static", 1)),
            (10, col_of(SHARED_MUT, 10, "OnceLock", 1)),
            (10, col_of(SHARED_MUT, 10, "OnceLock", 2)),
            (13, col_of(SHARED_MUT, 13, "lazy_static", 1)),
            (18, col_of(SHARED_MUT, 18, "thread_local", 1)),
        ],
        "{report:?}"
    );
    // The const, the eager immutable static and the allowed cache stay
    // clean.
    assert_eq!(report.violations.len(), 5, "{report:?}");
}

#[test]
fn shared_mut_state_lazies_are_scoped_but_static_mut_is_not() {
    // Outside the guarantee crates only the `static mut` survives.
    let report = analyze(&[SourceFile::from_source(
        "crates/experiments/src/fixture.rs",
        "experiments",
        SHARED_MUT,
    )]);
    assert_eq!(
        spans(&report.violations, "shared-mut-state"),
        vec![(7, col_of(SHARED_MUT, 7, "static", 1))],
        "{report:?}"
    );
}

#[test]
fn baseline_suppresses_fixture_debt_and_ratchets() {
    use xtask::baseline;

    // Both seeded nondet-iter violations recorded as debt → clean.
    let mut report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        NONDET_ITER,
    )]);
    let b = baseline::parse("nondet-iter crates/sim/src/fixture.rs 2\n").unwrap();
    baseline::apply(&mut report, &b, "xtask/lint-baseline.txt");
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.baselined, 2);

    // An over-generous cap is stale and fails the ratchet.
    let mut report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        NONDET_ITER,
    )]);
    let b = baseline::parse("nondet-iter crates/sim/src/fixture.rs 3\n").unwrap();
    baseline::apply(&mut report, &b, "xtask/lint-baseline.txt");
    assert_eq!(report.violations.len(), 1, "{report:?}");
    assert_eq!(report.violations[0].rule, "stale-baseline");
    assert_eq!(report.violations[0].file, "xtask/lint-baseline.txt");
}
