//! Fixture-based proof that every lint rule flags its seeded violations —
//! and nothing else — with the right spans.
//!
//! Each file under `tests/fixtures/` seeds violations for one rule next to
//! near-miss code that must NOT be flagged (test modules, total methods,
//! reasoned allow directives). Expected columns are derived from the
//! fixture text itself so the assertions stay honest about spans.

use xtask::lint::{analyze, SourceFile};
use xtask::report::Violation;

const FLOAT_EQ: &str = include_str!("fixtures/float_eq.rs");
const NO_PANIC: &str = include_str!("fixtures/no_panic.rs");
const GOVERNOR_DOC: &str = include_str!("fixtures/governor_doc.rs");
const AS_CAST: &str = include_str!("fixtures/as_cast.rs");
const FAULT_POLICY: &str = include_str!("fixtures/fault_policy.rs");

/// 1-based column of the `occurrence`-th `needle` on 1-based `line`.
fn col_of(src: &str, line: usize, needle: &str, occurrence: usize) -> usize {
    let text = src.lines().nth(line - 1).unwrap_or_else(|| {
        panic!("fixture has no line {line}");
    });
    text.match_indices(needle)
        .nth(occurrence - 1)
        .map(|(i, _)| i + 1)
        .unwrap_or_else(|| panic!("line {line} has no occurrence {occurrence} of {needle:?}"))
}

fn spans(violations: &[Violation], rule: &str) -> Vec<(usize, usize)> {
    violations
        .iter()
        .filter(|v| v.rule == rule)
        .map(|v| (v.line, v.col))
        .collect()
}

#[test]
fn float_eq_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/workload/src/fixture.rs",
        "workload",
        FLOAT_EQ,
    )]);
    assert_eq!(
        spans(&report.violations, "float-eq"),
        vec![
            (8, col_of(FLOAT_EQ, 8, "==", 1)),
            (13, col_of(FLOAT_EQ, 13, "!=", 1)),
        ],
        "{report:?}"
    );
    // The integer comparison, the allowed line, and everything else must
    // stay clean — two violations total.
    assert_eq!(report.violations.len(), 2, "{report:?}");
}

#[test]
fn no_panic_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        NO_PANIC,
    )]);
    assert_eq!(
        spans(&report.violations, "no-panic"),
        vec![
            (6, col_of(NO_PANIC, 6, "unwrap", 1)),
            (11, col_of(NO_PANIC, 11, "expect", 1)),
            (16, col_of(NO_PANIC, 16, "panic", 1)),
        ],
        "{report:?}"
    );
    assert_eq!(report.violations.len(), 3, "{report:?}");
}

#[test]
fn no_panic_rule_is_scoped_to_guarantee_crates() {
    // The same seeded panics are legal in a non-guarantee crate.
    let report = analyze(&[SourceFile::from_source(
        "crates/experiments/src/fixture.rs",
        "experiments",
        NO_PANIC,
    )]);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn governor_doc_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/baselines/src/fixture.rs",
        "baselines",
        GOVERNOR_DOC,
    )]);
    assert_eq!(
        spans(&report.violations, "governor-doc"),
        vec![(8, col_of(GOVERNOR_DOC, 8, "impl", 1))],
        "{report:?}"
    );
    let v = &report.violations[0];
    assert!(
        v.message.contains("Undocumented"),
        "message must name the type: {}",
        v.message
    );
    // `Documented` states its safety argument and must pass.
    assert_eq!(report.violations.len(), 1, "{report:?}");
}

#[test]
fn as_cast_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/core/src/fixture.rs",
        "core",
        AS_CAST,
    )]);
    assert_eq!(
        spans(&report.violations, "as-cast"),
        vec![
            (6, col_of(AS_CAST, 6, "as", 1)),
            (6, col_of(AS_CAST, 6, "as", 2)),
            (11, col_of(AS_CAST, 11, "as", 1)),
        ],
        "{report:?}"
    );
    // `f64::from` and the allowed cast must stay clean.
    assert_eq!(report.violations.len(), 3, "{report:?}");
}

#[test]
fn fault_policy_fixture_is_flagged_with_spans() {
    let report = analyze(&[SourceFile::from_source(
        "crates/sim/src/fixture.rs",
        "sim",
        FAULT_POLICY,
    )]);
    assert_eq!(
        spans(&report.violations, "fault-policy-exhaustive"),
        vec![
            (8, col_of(FAULT_POLICY, 8, "_", 1)),
            (16, col_of(FAULT_POLICY, 16, "fallback", 1)),
        ],
        "{report:?}"
    );
    // The exhaustive match, the unrelated-enum wildcard, and the allowed
    // arm must all stay clean — two violations total.
    assert_eq!(report.violations.len(), 2, "{report:?}");
}

#[test]
fn fault_policy_rule_is_scoped_to_guarantee_crates() {
    let report = analyze(&[SourceFile::from_source(
        "crates/experiments/src/fixture.rs",
        "experiments",
        FAULT_POLICY,
    )]);
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn as_cast_rule_is_scoped_to_claims_crates() {
    let report = analyze(&[SourceFile::from_source(
        "crates/workload/src/fixture.rs",
        "workload",
        AS_CAST,
    )]);
    assert!(report.is_clean(), "{report:?}");
}
