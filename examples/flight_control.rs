//! The generic avionics platform on a StrongARM-class processor with real
//! voltage-switch overhead (140 µs per transition) — the setting where
//! overhead-oblivious DVS becomes dangerous and the overhead-aware
//! slack-analysis variant proves its worth.
//!
//! ```sh
//! cargo run --release --example flight_control
//! ```

use stadvs::analysis::{edf_schedulable, validate_outcome, SchedulabilityTest};
use stadvs::power::Processor;
use stadvs::sim::{SimConfig, Simulator};
use stadvs::workload::{reference, ExecutionModel};
use stadvs_experiments::make_governor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tasks = reference::avionics();
    println!(
        "avionics platform: {} tasks, U = {:.3}, {}",
        tasks.len(),
        tasks.utilization(),
        match edf_schedulable(&tasks) {
            SchedulabilityTest::Schedulable => "EDF-schedulable",
            SchedulabilityTest::Unschedulable { .. } => "NOT schedulable",
        },
    );

    // Sensor-driven workloads: demands vary between 40 % and 100 % of WCET.
    let demand = ExecutionModel::uniform_bcet(0.4)?.with_seed(1553);

    for processor in [Processor::strongarm_class(), Processor::xscale_class()] {
        println!(
            "\n=== {} (switch latency {:.0} µs) ===",
            processor.name(),
            processor.overhead().latency() * 1e6
        );
        let sim = Simulator::new(
            tasks.clone(),
            processor.clone(),
            SimConfig::new(20.0)?.with_trace(true),
        )?;

        println!(
            "{:<12} {:>11} {:>11} {:>9} {:>8} {:>8}",
            "governor", "energy (J)", "normalized", "switches", "misses", "audit"
        );
        let mut base = None;
        for name in ["no-dvs", "static-edf", "dra", "st-edf", "st-edf-oa"] {
            let mut governor = make_governor(name).expect("resolves");
            let out = sim.run(governor.as_mut(), &demand)?;
            let report = validate_outcome(&out, &tasks, &processor);
            let energy = out.total_energy();
            let b = *base.get_or_insert(energy);
            println!(
                "{:<12} {:>11.3} {:>11.3} {:>9} {:>8} {:>8}",
                name,
                energy,
                energy / b,
                out.switches,
                out.miss_count(),
                if report.is_clean() { "clean" } else { "FAIL" }
            );
        }

        // The overhead-aware variant must be spotless on both platforms.
        let mut oa = make_governor("st-edf-oa").expect("resolves");
        let out = sim.run(oa.as_mut(), &demand)?;
        assert!(out.all_deadlines_met(), "st-edf-oa must never miss");
        println!(
            "st-edf-oa: {:.1} % saving, zero misses. (Overhead-oblivious \
             governors silently miss deadlines here — the audit column is \
             the point of this example. At U = 0.9 with 140 µs switches the \
             guaranteed-safe headroom is thin; the aware variant honestly \
             falls back toward full speed rather than gamble.)",
            (1.0 - out.total_energy() / base.expect("baseline ran")) * 100.0,
        );
    }
    Ok(())
}
