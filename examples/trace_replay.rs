//! Capture-and-replay: record the realized demands of one run, then replay
//! the *identical* workload under every governor — the methodology that
//! makes cross-algorithm energy numbers directly comparable (and lets a
//! measured target trace be studied off-line).
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use stadvs::power::Processor;
use stadvs::sim::{SimConfig, Simulator};
use stadvs::workload::{DemandPattern, ExecutionModel, RecordedDemand, TaskSetSpec};
use stadvs_experiments::{make_governor, STANDARD_LINEUP};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A "live system": bursty demand nobody can predict.
    let tasks = TaskSetSpec::new(5, 0.75)?.with_seed(11).generate()?;
    let live_demand = ExecutionModel::new(DemandPattern::Bursty {
        low: 0.15,
        high: 0.95,
        burst_jobs: 12,
        duty: 0.35,
    })?
    .with_seed(99);

    let sim = Simulator::new(
        tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(6.0)?,
    )?;

    // 2. Record one capture run (any governor works; the demands are the
    //    workload property being captured, not the schedule).
    let mut recorder = make_governor("no-dvs").expect("resolves");
    let capture = sim.run(recorder.as_mut(), &live_demand)?;
    let replay = RecordedDemand::from_outcome(&capture, tasks.len())?;
    println!(
        "captured {} jobs across {} tasks; first task's demand trace starts {:?}",
        capture.jobs.len(),
        tasks.len(),
        &replay
            .trace_of(stadvs::sim::TaskId(0))
            .expect("task 0 recorded")[..3.min(capture.jobs.len())]
    );

    // 3. Replay the identical workload under every governor.
    println!(
        "\n{:<14} {:>12} {:>12} {:>8}",
        "governor", "energy (J)", "normalized", "misses"
    );
    let mut base = None;
    for name in STANDARD_LINEUP {
        let mut governor = make_governor(name).expect("resolves");
        let out = sim.run(governor.as_mut(), &replay)?;
        let b = *base.get_or_insert(out.total_energy());
        println!(
            "{:<14} {:>12.4} {:>12.3} {:>8}",
            name,
            out.total_energy(),
            out.total_energy() / b,
            out.miss_count()
        );
        assert_eq!(out.miss_count(), 0);
    }

    // 4. Determinism check: the replayed capture reproduces itself exactly.
    let mut recorder2 = make_governor("no-dvs").expect("resolves");
    let capture2 = sim.run(recorder2.as_mut(), &replay)?;
    assert_eq!(capture.jobs, capture2.jobs);
    println!("\nreplay reproduced the capture bit-for-bit ✓");
    Ok(())
}
