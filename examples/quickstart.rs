//! Quickstart: schedule a small periodic task set under the slack-time-
//! analysis governor and compare its energy with running flat out.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stadvs::analysis::{edf_schedulable, validate_outcome};
use stadvs::baselines::{NoDvs, StaticEdf};
use stadvs::core::SlackEdf;
use stadvs::power::Processor;
use stadvs::sim::{MissPolicy, SimConfig, Simulator, Task, TaskSet};
use stadvs::workload::ExecutionModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three periodic hard real-time tasks: a 1 ms job every 10 ms, a 5 ms
    // job every 40 ms, and a 12 ms job every 100 ms (U ≈ 0.345).
    let tasks = TaskSet::new(vec![
        Task::new(1.0e-3, 10.0e-3)?.named("sensor"),
        Task::new(5.0e-3, 40.0e-3)?.named("control"),
        Task::new(12.0e-3, 100.0e-3)?.named("telemetry"),
    ])?;
    println!(
        "task set: {} tasks, worst-case utilization {:.3}, EDF schedulable: {:?}",
        tasks.len(),
        tasks.utilization(),
        edf_schedulable(&tasks)
    );

    // Jobs actually consume 30–100 % of their worst case, uniformly.
    let demand = ExecutionModel::uniform_bcet(0.3)?.with_seed(1);

    // Simulate 10 seconds on an ideal continuously-scalable processor.
    let processor = Processor::ideal_continuous();
    let sim = Simulator::new(
        tasks.clone(),
        processor.clone(),
        SimConfig::new(10.0)?
            .with_miss_policy(MissPolicy::Fail) // crash on any miss
            .with_trace(true),
    )?;

    let full = sim.run(&mut NoDvs::new(), &demand)?;
    let static_edf = sim.run(&mut StaticEdf::new(), &demand)?;
    let stedf = sim.run(&mut SlackEdf::new(), &demand)?;

    println!(
        "\n{:<12} {:>12} {:>12} {:>10}",
        "governor", "energy (J)", "normalized", "switches"
    );
    for out in [&full, &static_edf, &stedf] {
        println!(
            "{:<12} {:>12.4} {:>12.3} {:>10}",
            out.governor,
            out.total_energy(),
            out.total_energy() / full.total_energy(),
            out.switches
        );
    }

    // Independent audit: deadlines, work conservation, speed availability.
    let report = validate_outcome(&stedf, &tasks, &processor);
    println!(
        "\naudit: {report} — saved {:.1} % of the no-DVS energy with zero deadline misses",
        (1.0 - stedf.total_energy() / full.total_energy()) * 100.0
    );

    // A peek at the first 100 ms of the stEDF schedule (█ executing,
    // . idle; the speed row maps speeds to digits, 9 ≈ 90-100 %).
    let zoom_sim = stadvs::sim::Simulator::new(
        tasks.clone(),
        processor,
        stadvs::sim::SimConfig::new(0.1)?.with_trace(true),
    )?;
    let zoomed = zoom_sim.run(&mut SlackEdf::new(), &demand)?;
    println!(
        "\nfirst 100 ms under st-edf:\n{}",
        stadvs::sim::render_gantt(zoomed.trace.as_ref().expect("trace on"), &tasks, 72)
    );
    Ok(())
}
