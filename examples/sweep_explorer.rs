//! Interactive parameter exploration: compare the whole governor lineup on
//! synthetic workloads of your choosing.
//!
//! ```sh
//! cargo run --release --example sweep_explorer -- [n_tasks] [utilization] [bcet_ratio] [seeds]
//! cargo run --release --example sweep_explorer -- 12 0.85 0.3 10
//! ```

use stadvs::power::Processor;
use stadvs::workload::DemandPattern;
use stadvs_experiments::{Comparison, Table, WorkloadCase, ORACLE, STANDARD_LINEUP, YDS_BOUND};

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n_tasks: usize = arg(1, 8);
    let utilization: f64 = arg(2, 0.7);
    let bcet_ratio: f64 = arg(3, 0.5);
    let seeds: u64 = arg(4, 10);
    eprintln!(
        "comparing {} governors on {n_tasks} tasks, U = {utilization}, \
         BCET/WCET = {bcet_ratio}, {seeds} random sets...",
        STANDARD_LINEUP.len() + 2
    );

    let mut lineup: Vec<&str> = STANDARD_LINEUP.to_vec();
    lineup.push(ORACLE);
    lineup.push(YDS_BOUND);
    let comparison =
        Comparison::new(Processor::ideal_continuous(), 4.0).with_governors(lineup.iter().copied());

    let cases: Vec<WorkloadCase> = (0..seeds)
        .map(|seed| {
            WorkloadCase::synthetic(
                n_tasks,
                utilization,
                DemandPattern::Uniform {
                    min: bcet_ratio,
                    max: 1.0,
                },
                seed,
            )
        })
        .collect();
    let aggregated = comparison.run_cases(&cases);

    let mut table = Table::new(
        format!("sweep: {n_tasks} tasks, U = {utilization}, BCET/WCET = {bcet_ratio}"),
        "governor",
        vec![
            "normalized energy".to_string(),
            "± std".to_string(),
            "switches/job".to_string(),
            "misses".to_string(),
        ],
    );
    for a in &aggregated {
        table.push_row(
            a.name.clone(),
            vec![
                a.mean_normalized,
                a.std_normalized,
                a.switches_per_job,
                a.total_misses as f64,
            ],
        );
    }
    println!("{table}");
}
