//! A battery-powered media player — the classic "dynamic workload"
//! motivating slack-analysis DVS: frame decode times swing wildly between
//! I-frames and B-frames, audio is steady, and the UI bursts with user
//! activity. History predicts little; measured slack is everything.
//!
//! Runs the whole governor lineup on an XScale-class 5-level processor and
//! reports energy, battery-life extension, and per-task response times.
//!
//! ```sh
//! cargo run --release --example video_player
//! ```

use stadvs::power::Processor;
use stadvs::sim::{ExecutionSource, SimConfig, Simulator, Task, TaskId, TaskSet};
use stadvs::workload::{DemandPattern, ExecutionModel};
use stadvs_experiments::{make_governor, STANDARD_LINEUP};

/// Per-task demand models (the media pipeline mixes patterns).
struct MediaDemand {
    video: ExecutionModel,
    audio: ExecutionModel,
    ui: ExecutionModel,
    network: ExecutionModel,
}

impl ExecutionSource for MediaDemand {
    fn actual_work(&self, task_id: TaskId, task: &Task, job_index: u64) -> f64 {
        let model = match task_id.0 {
            0 => &self.video,
            1 => &self.audio,
            2 => &self.ui,
            _ => &self.network,
        };
        model.actual_work(task_id, task, job_index)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 30 fps video decode (33 ms period, 12 ms WCET), 10 ms audio mixing,
    // 50 ms UI refresh, 100 ms network buffering. U ≈ 0.70.
    let tasks = TaskSet::new(vec![
        Task::new(12.0e-3, 33.0e-3)?.named("video-decode"),
        Task::new(2.0e-3, 10.0e-3)?.named("audio-mix"),
        Task::new(4.0e-3, 50.0e-3)?.named("ui-refresh"),
        Task::new(5.0e-3, 100.0e-3)?.named("net-buffer"),
    ])?;

    let demand = MediaDemand {
        // I-frames (rare) hit the worst case; B-frames take ~35 %.
        video: ExecutionModel::new(DemandPattern::Bimodal {
            low: 0.35,
            high: 1.0,
            high_probability: 0.12,
        })?
        .with_seed(2024),
        audio: ExecutionModel::new(DemandPattern::Normal {
            mean: 0.8,
            std_dev: 0.05,
            floor: 0.5,
        })?
        .with_seed(7),
        ui: ExecutionModel::new(DemandPattern::Bursty {
            low: 0.15,
            high: 0.9,
            burst_jobs: 30,
            duty: 0.25,
        })?
        .with_seed(99),
        network: ExecutionModel::new(DemandPattern::Sinusoidal {
            mean: 0.5,
            amplitude: 0.35,
            period_jobs: 60,
        })?
        .with_seed(13),
    };

    let processor = Processor::xscale_class();
    println!(
        "platform: {} ({} operating points), U = {:.2}, simulating 20 s of playback\n",
        processor.name(),
        processor.frequency_model().levels().unwrap_or(0),
        tasks.utilization()
    );
    let sim = Simulator::new(tasks.clone(), processor, SimConfig::new(20.0)?)?;

    let mut baseline_energy = None;
    println!(
        "{:<12} {:>11} {:>11} {:>9} {:>8} {:>14}",
        "governor", "energy (J)", "normalized", "switches", "misses", "battery gain"
    );
    for name in STANDARD_LINEUP {
        let mut governor = make_governor(name).expect("lineup resolves");
        let out = sim.run(governor.as_mut(), &demand)?;
        let energy = out.total_energy();
        let base = *baseline_energy.get_or_insert(energy);
        println!(
            "{:<12} {:>11.3} {:>11.3} {:>9} {:>8} {:>13.0}%",
            name,
            energy,
            energy / base,
            out.switches,
            out.miss_count(),
            (base / energy - 1.0) * 100.0
        );
    }

    // Zoom in: worst-case response time per task under stEDF (slowing down
    // trades response-time margin for energy — but never past a deadline).
    let mut stedf = make_governor("st-edf").expect("resolves");
    let out = sim.run(stedf.as_mut(), &demand)?;
    println!("\nstEDF worst-case response time per task (vs deadline):");
    for (id, task) in tasks.iter() {
        let worst = out
            .jobs
            .iter()
            .filter(|r| r.id.task == id)
            .filter_map(|r| r.response_time())
            .fold(0.0, f64::max);
        println!(
            "  {:<13} {:>6.2} ms of {:>6.2} ms ({:.0} % margin)",
            task.name().unwrap_or("?"),
            worst * 1e3,
            task.deadline() * 1e3,
            (1.0 - worst / task.deadline()) * 100.0
        );
    }
    assert_eq!(out.miss_count(), 0, "hard real-time: no frame ever drops");
    Ok(())
}
