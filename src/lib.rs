//! # stadvs — slack-time-analysis DVS for EDF hard real-time systems
//!
//! Umbrella crate re-exporting the whole `stadvs` workspace: a
//! production-quality reproduction of the DATE 2002 paper *"A Dynamic Voltage
//! Scaling Algorithm for Dynamic-Priority Hard Real-Time Systems Using Slack
//! Time Analysis"*.
//!
//! * [`power`] — variable-voltage processor, power, and energy models,
//! * [`sim`] — event-driven preemptive EDF scheduler and DVS simulator,
//! * [`workload`] — task-set and execution-time generators,
//! * [`analysis`] — schedulability, trace validation, clairvoyant bounds,
//! * [`baselines`] — published baseline governors (ccEDF, laEDF, lppsEDF,
//!   DRA, …),
//! * [`core`] — the paper's contribution: the slack-time-analysis governor,
//! * [`experiments`] — the harness regenerating every figure and table.
//!
//! See `examples/quickstart.rs` for a five-minute tour and [`theory`] for
//! the safety arguments behind the slack analysis.

#![forbid(unsafe_code)]

pub mod theory;

pub use stadvs_analysis as analysis;
pub use stadvs_baselines as baselines;
pub use stadvs_core as core;
pub use stadvs_experiments as experiments;
pub use stadvs_power as power;
pub use stadvs_sim as sim;
pub use stadvs_workload as workload;

/// Convenience prelude importing the names used by almost every program.
pub mod prelude {
    pub use stadvs_analysis::{
        edf_schedulable, minimum_static_speed, response_profile, validate_outcome,
        SchedulabilityTest,
    };
    pub use stadvs_baselines::{CcEdf, Dra, FeedbackEdf, LaEdf, LppsEdf, NoDvs, StaticEdf};
    pub use stadvs_core::{SlackEdf, SlackEdfConfig};
    pub use stadvs_power::{Processor, Speed};
    pub use stadvs_sim::{render_gantt, Governor, MissPolicy, SimConfig, Simulator, Task, TaskSet};
    pub use stadvs_workload::{DemandPattern, ExecutionModel, TaskSetSpec};
}
