//! # Theory notes: why the slack-time analysis is safe
//!
//! This chapter collects, in one place, the safety arguments implemented
//! across [`stadvs_core`] — including the pitfalls that were discovered as
//! *real deadline misses* by the randomized test suite and then root-caused.
//! It is documentation, not code; every claim here is enforced by
//! `tests/hard_guarantee.rs` and the independent audit in
//! [`stadvs_analysis::validate_outcome`].
//!
//! ## 1. Model
//!
//! Periodic tasks `τ_i = (C_i, T_i, D_i ≤ T_i)`, preemptive EDF, normalized
//! processor speed `s ∈ (0, 1]`. Executing at speed `s` for wall-clock `Δ`
//! completes `s·Δ` work. Actual demands are unknown a priori, bounded by
//! `C_i`, and revealed only at completion. A governor may choose a new speed
//! at every scheduling point (release, completion, idle end, or a
//! self-requested power-management point).
//!
//! ## 2. The canonical schedule and the claims currency
//!
//! Let `s* = minimum feasible static speed` — equal to the utilization `U`
//! for implicit deadlines, and to the demand-bound intensity supremum
//! `sup_t dbf(t)/t` for constrained deadlines. The **canonical schedule** is
//! EDF run at the constant speed `s*`; it meets every deadline by
//! definition of `s*`, and in it every job of `τ_i` occupies exactly
//! `κ·C_i` of wall-clock processor time (`κ = 1/s*`), all of it before the
//! job's deadline.
//!
//! That occupancy is the job's **claim** — the currency all slack sources
//! share. The central invariant the governor maintains at every scheduling
//! point `t`:
//!
//! > **Claims invariant.** For every checkpoint `D`:
//! > `claims(t, D) ≤ D − t`, where `claims(t, D)` sums the remaining claims
//! > of ready jobs with deadlines `≤ D`, the canonical occupancies of
//! > future jobs with deadlines `≤ D`, and banked ledger entries with tags
//! > `≤ D`.
//!
//! The canonical schedule itself witnesses the invariant initially; each
//! transition preserves it:
//!
//! * **execution** of the EDF-minimum job for `δ` shrinks every window by
//!   `δ` and the running job's claim by `δ` (its claim is absorbed at the
//!   earliest outstanding position);
//! * **completion** moves the unused claim into the ledger at the same
//!   deadline tag (or discards it);
//! * **dispatch absorption** moves ledger entries with tags `≤ d_J` into
//!   `J`'s claim — tags only move *later*, which is the safe direction;
//! * **extra-slack grants** (§3) consume only surplus the invariant proves.
//!
//! Two transition rules are easy to miss, and both absences produced
//! millisecond-scale misses in randomized testing before being added:
//!
//! 1. **Idle drains the bank.** While the real processor idles, the
//!    canonical schedule keeps performing the service the ledger banks;
//!    windows shrink with no claim shrinking. Clearing the ledger on idle
//!    restores the plain canonical state (safe: an idle instant means the
//!    real schedule is strictly ahead).
//! 2. **Claims floor at remaining work.** A job that consumed granted extra
//!    slack has spent more wall time than its canonical claim; clamping its
//!    visible claim at `max(granted − wall, remaining worst-case work)`
//!    keeps other jobs' analyses covering the time it still needs.
//!
//! ## 3. The demand analysis and its tail bound
//!
//! For the dispatched job `J` (deadline `d`), the minimum over checkpoints
//! `D ≥ d` of `(D − t) − claims(t, D)` is time *nobody* has claimed;
//! granting `J` its share keeps the invariant. Checkpoints before `d` do
//! not bind `J`: any earlier-deadline arrival preempts it and takes its own
//! claim first.
//!
//! Enumerating checkpoints must stop somewhere; beyond the window the
//! analysis uses an analytic bound. With `a_i` the next release of `τ_i`,
//! the release count obeys `count_i(D) ≤ (D − a_i − D_i)/T_i + 1`, and
//! canonical claims accrue at rate exactly 1, so for `D ≥ max_i(a_i + D_i)`
//!
//! ```text
//! slack(D) ≥ Σ_i (a_i + D_i − t)·(u_i·κ) − Σ_i C_i·κ − ready − bank,
//! ```
//!
//! a constant equal to the steady-state sawtooth valley. Any finite window
//! therefore yields a certificate valid over the **unbounded** horizon.
//!
//! ## 4. A documented unsound alternative
//!
//! An earlier draft measured demand slack in raw worst-case-work units and
//! combined it with the canonical allowance by `max(…)`. Counterexample
//! (`U = 0.75`): `τ_1 = (2, 4)`, `τ_2 = (2, 8)`, worst-case demands. At
//! `t = 0` the work-based analysis certifies the full window `[0, 4]` for
//! `J_1` (slack 2 at every checkpoint), so `J_1` runs at speed `1/2` and
//! occupies `[0, 4]` — overdrawing its canonical allotment of `8/3`. At
//! `t = 4`, `J_1'` takes its canonical allowance `8/3` (the `max` picks it),
//! finishing worst-case at `6.67`, and `J_2` — with 2 units of work and
//! `1.33` of window — misses deadline 8 by `0.67`. The two certificates
//! assumed different invariants; measuring demand *in claim units* removes
//! the conflict, and as a bonus distributes static slack the way the
//! canonical schedule would.
//!
//! Conversely, banking is **not** redundant next to the claims analysis:
//! an unrecorded early completion is visible only transiently (the
//! worst-case tail bound rightly refuses to promise unrecorded time
//! sustainably), while a deadline-tagged entry is a claim the analysis
//! protects until spent or expired. The deadline-tag consumption rule of
//! classic reclaiming *emerges* from the claims analysis rather than being
//! postulated.
//!
//! ## 5. Arrival stretching
//!
//! A job alone in the ready set may stretch to
//! `min(d, next arrival) − outstanding bank`: at the chosen speed it
//! worst-case-completes before anything else exists, so the state at the
//! next arrival is at least as advanced as the canonical schedule's — minus
//! the banked claims whose windows the stretch would otherwise eat, which
//! is why the bank total is subtracted.
//!
//! ## 6. Switch overhead
//!
//! Transition latency `δ` erodes windows without eroding claims. Pricing it
//! into the currency restores the invariant: each job of `τ_i` carries a
//! margin `m_i = δ·(2 + Σ_{D_j<D_i}((D_i − D_j)/T_j + 1))` bounding its
//! dispatch switch plus one resume per possible preemption (only
//! earlier-absolute-deadline arrivals preempt, and such an arrival must
//! land in the first `D_i − D_j` of the window). The canonical stretch is
//! re-solved with WCETs inflated by the margins (`(C+m)·κ ≥ C·κ + m` for
//! `κ ≥ 1` keeps the inflation conservative); if no stretch `≥ 1` exists
//! the governor runs at full speed and never switches. The margin bound is
//! only valid because the dispatch speed is **committed** across
//! non-preempting releases — those arrivals were already counted by the
//! demand analysis — and margins are forfeited (never banked) at
//! settlement, since a job's recorded wall time excludes the transition
//! latencies spent on its behalf.
//!
//! ## 7. Intra-job pacing
//!
//! Within a fixed allowance `A` for remaining work `W`, splitting into `n`
//! chunks with survival probabilities `P_k` and minimizing expected energy
//! `Σ P_k·w·s_k²` under `Σ w/s_k = A` yields `s_k ∝ P_k^{−1/3}`. The plan's
//! worst case consumes exactly `A`, so every guarantee above is untouched.
//! The survival profile is learned online per task and conditioned on
//! current progress; with degenerate (always-worst-case) demand the learned
//! profile is flat and the plan collapses to the constant speed — a fixed
//! distribution assumption instead pays a convexity penalty exactly when
//! it is wrong.
//!
//! ## 8. What the tests enforce
//!
//! * `tests/hard_guarantee.rs` — every governor, randomized task sets
//!   (including constrained deadlines and discrete platforms), zero misses
//!   under `MissPolicy::Fail` plus the full independent audit;
//! * `tests/bound_dominance.rs` — the YDS optimum lower-bounds every
//!   governor on every case; `YDS ≤ oracle-static ≤ st-edf ≤ no-dvs`;
//! * `tests/analysis_cross_check.rs` — QPA agrees with worst-case
//!   simulation; the oracle speed equals the YDS peak and is tight; the
//!   minimum static speed is sufficient on constrained-deadline sets (this
//!   test caught a busy-period-horizon bug in an earlier version).
