//! The differential weakly-hard harness: every governor, same mixed
//! workload, same (m,k) contracts — compared against the `no-dvs`
//! reference run.
//!
//! Three facts pin the (m,k) skip subsystem to the guarantees:
//!
//! 1. **Skip decisions are governor-invariant in-contract.** A skip is
//!    licensed purely by the task's met/loss window, and in-contract every
//!    executed job completes on time under every governor, so all
//!    governors must observe the *identical* job stream — releases,
//!    deadlines, demands, and the skip set itself — bit-for-bit against
//!    `no-dvs`.
//! 2. **Contracts are never violated.** The sliding-window admissibility
//!    check only licenses a skip when the (m,k) contract stays satisfiable,
//!    so an independent [`MkWindow`] replay over the job stream (skips
//!    counted as losses) must never report a violation, under any skip
//!    policy.
//! 3. **Hard tasks are untouched.** Mixing weakly-hard tasks in must not
//!    cost a single hard deadline: `MissPolicy::Fail` stays armed and zero
//!    misses are tolerated.
//!
//! Case counts: 64 per property by default (each case exercises every
//! governor), raised in CI's full job via `STADVS_PROPTEST_CASES`. The
//! lineup is derived from the governor capability table (weakly-hard skips
//! are an extreme early completion, so every governor qualifies) — this
//! harness and the experiments can never disagree about who runs.

// `ProptestConfig` grows fields across proptest releases; keep the
// `..default()` spread even when every currently-visible field is set.
#![allow(clippy::needless_update)]

use std::collections::HashSet;

use proptest::prelude::*;
use stadvs::experiments::{governor_caps, make_governor};
use stadvs::power::Processor;
use stadvs::sim::{
    audit_outcome, FaultPlan, MissPolicy, MkWindow, SimConfig, SimOutcome, Simulator, SkipPolicy,
    TaskKind, TaskSet,
};
use stadvs::workload::{DemandPattern, ExecutionModel, ModelMix, TaskSetSpec};

const GOVERNORS: &[&str] = &[
    "no-dvs",
    "static-edf",
    "lpps-edf",
    "cc-edf",
    "dra",
    "dra-ote",
    "feedback-edf",
    "la-edf",
    "st-edf",
    "st-edf[r]",
    "st-edf[a]",
    "st-edf[d]",
    "st-edf-pace",
    "st-edf-cs",
];

/// The governors safe under weakly-hard skips, derived from the registry's
/// capability table (all of them — a skip only removes demand).
fn weakly_hard_safe_governors() -> Vec<&'static str> {
    GOVERNORS
        .iter()
        .copied()
        .filter(|name| {
            governor_caps(name)
                .expect("lineup names are known")
                .weakly_hard
        })
        .collect()
}

const HORIZON: f64 = 1.2;

fn cases() -> u32 {
    std::env::var("STADVS_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A synthetic mixed case: the first `weakly_hard` tasks carry the (m,k)
/// contract, the rest stay hard.
fn mixed_case(
    n_tasks: usize,
    utilization: f64,
    weakly_hard: usize,
    m: u32,
    k: u32,
    bcet: f64,
    seed: u64,
) -> (TaskSet, ExecutionModel) {
    let tasks = TaskSetSpec::new(n_tasks, utilization)
        .expect("parameters in range")
        .with_model_mix(
            ModelMix::new()
                .with_weakly_hard(weakly_hard, m, k)
                .expect("contract in range"),
        )
        .expect("mix fits")
        .with_seed(seed)
        .generate()
        .expect("generation succeeds");
    let exec = ExecutionModel::new(DemandPattern::Uniform {
        min: bcet,
        max: 1.0,
    })
    .expect("pattern in range")
    .with_seed(seed ^ 0x5EED_5EED_5EED_5EED);
    (tasks, exec)
}

/// The governor-invariant part of an outcome: every released job's
/// identity, release, deadline, WCET, and actual demand (exact bits) —
/// skipped jobs appear with zero demand — sorted.
fn job_signature(out: &SimOutcome) -> Vec<(usize, u64, u64, u64, u64, u64)> {
    let mut sig: Vec<_> = out
        .jobs
        .iter()
        .map(|r| {
            (
                r.id.task.0,
                r.id.index,
                r.release.to_bits(),
                r.deadline.to_bits(),
                r.wcet.to_bits(),
                r.actual.to_bits(),
            )
        })
        .collect();
    sig.sort_unstable();
    sig
}

fn run_governor(
    tasks: &TaskSet,
    exec: &ExecutionModel,
    name: &str,
    policy: SkipPolicy,
) -> Result<SimOutcome, String> {
    let sim = Simulator::new(
        tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(HORIZON)
            .expect("valid horizon")
            .with_miss_policy(MissPolicy::Fail)
            .with_skip_policy(policy),
    )
    .expect("generated sets are feasible");
    let mut governor = make_governor(name).expect("governor resolves");
    sim.run(governor.as_mut(), exec)
        .map_err(|e| format!("{name} violated the hard guarantee: {e}"))
}

/// Replays every weakly-hard task's job stream through an independent
/// [`MkWindow`] — skips count as losses — and fails on any violation.
fn assert_contracts(out: &SimOutcome, tasks: &TaskSet) -> Result<(), TestCaseError> {
    let skipped: HashSet<_> = out.models.skipped.iter().copied().collect();
    for (id, task) in tasks.iter() {
        let TaskKind::WeaklyHard { m, k } = task.kind() else {
            continue;
        };
        let mut window = MkWindow::new(m, k).expect("generated contracts are valid");
        // `out.jobs` is sorted by (task, index), so this filter visits the
        // task's jobs in release order.
        for r in out.jobs.iter().filter(|r| r.id.task == id) {
            window.record(!r.missed(out.horizon) && !skipped.contains(&r.id));
            prop_assert!(
                !window.violated(),
                "task {} violated its ({},{}) contract at job #{}",
                id,
                m,
                k,
                r.id.index
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// In-contract mixed sets under the greedy skip policy: every governor
    /// meets every deadline (`MissPolicy::Fail` armed), observes the
    /// bit-identical job stream *and skip set* of the `no-dvs` reference,
    /// never violates an (m,k) window, and passes the model-aware audit.
    #[test]
    fn in_contract_mixed_sets_meet_contracts_and_agree(
        n_tasks in 2usize..7,
        utilization in 0.2f64..=0.9,
        weakly_hard in 1usize..7,
        k in 1u32..=5,
        m_off in 0u32..5,
        bcet in 0.1f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        let weakly_hard = weakly_hard.min(n_tasks);
        let m = (m_off % k) + 1;
        let (tasks, exec) = mixed_case(n_tasks, utilization, weakly_hard, m, k, bcet, seed);

        let reference = run_governor(&tasks, &exec, "no-dvs", SkipPolicy::Greedy)
            .map_err(TestCaseError::fail)?;
        let ref_sig = job_signature(&reference);
        // Greedy skipping with surplus in the window starts skipping at
        // job 0 (virtual mets), so a strict contract surplus guarantees
        // skip activity.
        if m < k {
            prop_assert!(reference.models.skips > 0, "greedy never skipped under ({m},{k})");
        } else {
            prop_assert_eq!(reference.models.skips, 0, "skip licensed under a full ({m},{k}) contract");
        }

        for name in weakly_hard_safe_governors() {
            let outcome = run_governor(&tasks, &exec, name, SkipPolicy::Greedy)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(outcome.miss_count(), 0, "{} missed in-contract", name);
            prop_assert_eq!(
                &job_signature(&outcome), &ref_sig,
                "{} observed a different job stream than no-dvs", name
            );
            prop_assert_eq!(
                &outcome.models.skipped, &reference.models.skipped,
                "{}'s skip decisions diverged from no-dvs", name
            );
            assert_contracts(&outcome, &tasks)?;
            let audit = audit_outcome(&outcome, &tasks, &FaultPlan::NONE);
            prop_assert!(audit.is_clean(), "{} failed the audit: {}", name, audit);
        }
    }

    /// Every skip policy is a deterministic function of the seed: two runs
    /// of the same governor replay bit-identically (job records and the
    /// full model report), `Never` executes everything, and no admissible
    /// policy ever violates a window.
    #[test]
    fn skip_policies_replay_bit_identically_and_stay_in_contract(
        n_tasks in 2usize..6,
        utilization in 0.2f64..=0.8,
        k in 2u32..=5,
        m_off in 0u32..4,
        bcet in 0.2f64..=1.0,
        seed in 0u64..1_000_000,
        policy_choice in 0usize..3,
        skip_p in 0.0f64..=1.0,
        skip_seed in 0u64..1_000_000,
    ) {
        let m = (m_off % k) + 1;
        let (tasks, exec) = mixed_case(n_tasks, utilization, n_tasks.min(2), m, k, bcet, seed);
        let policy = match policy_choice {
            0 => SkipPolicy::Greedy,
            1 => SkipPolicy::Never,
            _ => SkipPolicy::seeded(skip_p, skip_seed).expect("probability in range"),
        };

        for name in ["st-edf", "cc-edf"] {
            let a = run_governor(&tasks, &exec, name, policy).map_err(TestCaseError::fail)?;
            let b = run_governor(&tasks, &exec, name, policy).map_err(TestCaseError::fail)?;
            prop_assert_eq!(&a.jobs, &b.jobs, "{}'s job records did not replay", name);
            prop_assert_eq!(&a.models, &b.models, "{}'s model report did not replay", name);
            if matches!(policy, SkipPolicy::Never) {
                prop_assert_eq!(a.models.skips, 0, "{} skipped under Never", name);
            }
            prop_assert_eq!(a.miss_count(), 0, "{} missed in-contract", name);
            assert_contracts(&a, &tasks)?;
            let audit = audit_outcome(&a, &tasks, &FaultPlan::NONE);
            prop_assert!(audit.is_clean(), "{} failed the audit: {}", name, audit);
        }
    }
}
