//! `SimScratch` reuse must be state-free.
//!
//! The experiment workers thread one scratch through thousands of runs;
//! any engine or governor-side state leaking across runs (ready queues,
//! release cursors, the fault machinery's `skip_next` marks) would make
//! results depend on *run order* — silently, since each run still looks
//! plausible. This regression test replays two different seeds
//! back-to-back through one shared scratch and diffs every outcome —
//! energy, job records, and full traces — against fresh-scratch runs.

use stadvs::experiments::{make_governor, WorkloadCase};
use stadvs::power::Processor;
use stadvs::sim::{FaultPlan, OverrunPolicy, SimConfig, SimOutcome, SimScratch, Simulator};
use stadvs::workload::DemandPattern;

const GOVERNORS: &[&str] = &[
    "no-dvs",
    "cc-edf",
    "dra",
    "feedback-edf",
    "la-edf",
    "st-edf",
];

fn run_one(scratch: &mut SimScratch, seed: u64, governor: &str, plan: &FaultPlan) -> SimOutcome {
    let case = WorkloadCase::synthetic(5, 0.7, DemandPattern::Uniform { min: 0.2, max: 1.0 }, seed);
    let sim = Simulator::new(
        case.tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(2.0).expect("valid horizon").with_trace(true),
    )
    .expect("generated sets are feasible");
    let mut g = make_governor(governor).expect("governor resolves");
    sim.run_faulted_with_scratch(g.as_mut(), &case.exec, plan, scratch)
        .expect("run succeeds")
}

fn assert_reuse_clean(plan: &FaultPlan, label: &str) {
    // Two different workloads (different task counts would be even harsher,
    // but synthetic(5, …) with distant seeds already changes every period,
    // WCET, and demand draw).
    const SEED_A: u64 = 11;
    const SEED_B: u64 = 97;
    for name in GOVERNORS {
        let mut shared = SimScratch::new();
        let a_shared = run_one(&mut shared, SEED_A, name, plan);
        let b_shared = run_one(&mut shared, SEED_B, name, plan);
        // And back again: a third run must also be unaffected by the two
        // before it.
        let a_again = run_one(&mut shared, SEED_A, name, plan);

        let a_fresh = run_one(&mut SimScratch::new(), SEED_A, name, plan);
        let b_fresh = run_one(&mut SimScratch::new(), SEED_B, name, plan);

        assert_eq!(a_shared, a_fresh, "{label}/{name}: first run differs");
        assert_eq!(
            b_shared, b_fresh,
            "{label}/{name}: scratch reuse leaked state into the second run"
        );
        assert_eq!(
            a_again, a_fresh,
            "{label}/{name}: scratch reuse leaked state into the third run"
        );
    }
}

#[test]
fn scratch_reuse_is_bit_identical_without_faults() {
    assert_reuse_clean(&FaultPlan::NONE, "fault-free");
}

/// The harsh case: `SkipNext` recovery writes per-task marks into the
/// scratch mid-run, and the fault channels consume seeded draws — none of
/// it may survive into the next run.
#[test]
fn scratch_reuse_is_bit_identical_under_faults() {
    let plan = FaultPlan::new(7)
        .with_overrun(0.3, 1.6)
        .expect("valid overrun channel")
        .with_release_jitter(0.2, 0.2)
        .expect("valid jitter channel")
        .with_policy_override(OverrunPolicy::SkipNext);
    assert_reuse_clean(&plan, "skip-next storm");
}
