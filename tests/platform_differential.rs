//! The platform differential harness: the multiprocessor engine against
//! the uniprocessor engine it generalizes.
//!
//! Two facts pin [`PlatformSim`] to the existing single-core semantics:
//!
//! 1. **One core is the identity.** A 1-core `PlatformSim` (original task
//!    order, same config) must reproduce the legacy [`Simulator`]
//!    *bit-for-bit* — energy breakdown, switch/event counts, every job
//!    record, every trace segment, and the miss set — across the golden
//!    corpus parameters (3 seeds × 3 governors). Any divergence means the
//!    platform layer changed simulation semantics, not just arity.
//! 2. **Many cores keep the hard guarantee.** Partitioned union workloads
//!    on 4 cores run under [`MissPolicy::Fail`] with one fresh governor
//!    per core, and every core's outcome must pass the fault-aware audit
//!    referee ([`PlatformSim::audit`]) — for both partitioners, with the
//!    per-core demand streams routed through the partition's id
//!    translation.

use stadvs::experiments::{make_governor, WorkloadCase};
use stadvs::power::{Platform, Processor};
use stadvs::sim::{MissPolicy, PlatformSim, SimConfig, SimOutcome, Simulator};
use stadvs::workload::{partitioner_by_name, DemandPattern};

/// The golden-trace corpus parameters (see
/// `crates/experiments/tests/golden_trace.rs`): the trivial, the
/// baseline-reclaiming, and the full slack-analysis scheduling paths.
const SEEDS: [u64; 3] = [11, 23, 47];
const GOVERNORS: [&str; 3] = ["no-dvs", "cc-edf", "st-edf"];
const N_TASKS: usize = 6;
const UTILIZATION: f64 = 0.75;
const HORIZON: f64 = 4.0;

/// The identity of every missed job, sorted.
fn miss_set(out: &SimOutcome) -> Vec<(usize, u64)> {
    let mut set: Vec<(usize, u64)> = out
        .jobs
        .iter()
        .filter(|j| j.missed(out.horizon))
        .map(|j| (j.id.task.0, j.id.index))
        .collect();
    set.sort_unstable();
    set
}

#[test]
fn one_core_platform_is_bit_identical_to_the_legacy_simulator() {
    for seed in SEEDS {
        let case = WorkloadCase::synthetic(
            N_TASKS,
            UTILIZATION,
            DemandPattern::Uniform { min: 0.3, max: 1.0 },
            seed,
        );
        let config = SimConfig::default()
            .with_horizon(HORIZON)
            .expect("valid horizon")
            .with_trace(true);
        let legacy_sim = Simulator::new(
            case.tasks.clone(),
            Processor::ideal_continuous(),
            config.clone(),
        )
        .expect("corpus task sets are feasible");
        let platform_sim =
            PlatformSim::uniprocessor(case.tasks.clone(), Processor::ideal_continuous(), config)
                .expect("same feasibility check as the legacy engine");
        for name in GOVERNORS {
            let mut governor = make_governor(name).expect("corpus governor exists");
            let legacy = legacy_sim
                .run(governor.as_mut(), &case.exec)
                .expect("legacy run succeeds");
            let platform = platform_sim
                .run(
                    |_| make_governor(name).expect("corpus governor exists"),
                    &case.exec,
                )
                .expect("platform run succeeds");
            assert_eq!(platform.cores.len(), 1);
            // The acceptance triple, by name, for readable failures …
            assert_eq!(
                platform.cores[0].energy, legacy.energy,
                "{name}/{seed}: energy diverged"
            );
            assert_eq!(
                miss_set(&platform.cores[0]),
                miss_set(&legacy),
                "{name}/{seed}: miss set diverged"
            );
            assert_eq!(
                platform.cores[0].trace, legacy.trace,
                "{name}/{seed}: trace diverged"
            );
            // … and the full-outcome equality that subsumes it (job
            // records, switches, event counts, preemptions, …).
            assert_eq!(platform.cores[0], legacy, "{name}/{seed}: outcome diverged");
            // Platform-level aggregates collapse to the single core.
            assert_eq!(platform.total_energy(), legacy.energy.total());
            assert_eq!(platform.switches(), legacy.switches);
            assert_eq!(platform.miss_count(), legacy.miss_count());
        }
    }
}

#[test]
fn multi_core_partitions_keep_the_hard_guarantee() {
    const CORES: usize = 4;
    for partitioner_name in ["ffd", "wfd"] {
        let partitioner = partitioner_by_name(partitioner_name).expect("registered");
        for seed in SEEDS {
            let case = WorkloadCase::synthetic_union(
                CORES,
                N_TASKS,
                0.5,
                DemandPattern::Uniform { min: 0.3, max: 1.0 },
                seed,
            );
            let report = partitioner
                .partition(&case.tasks, CORES)
                .expect("positive core count");
            assert!(
                report.admitted(),
                "{partitioner_name}/{seed}: rejected a task at U = 0.5/core"
            );
            let assignments: Vec<_> = (0..CORES)
                .map(|c| report.core_task_set(&case.tasks, c))
                .collect();
            let sim = PlatformSim::new(
                Platform::homogeneous(CORES, Processor::ideal_continuous())
                    .expect("positive core count"),
                assignments,
                SimConfig::default()
                    .with_horizon(HORIZON)
                    .expect("valid horizon")
                    .with_miss_policy(MissPolicy::Fail),
            )
            .expect("admitted partitions are per-core feasible");
            let execs: Vec<_> = (0..CORES)
                .map(|c| report.core_demand(&case.exec, c))
                .collect();
            for name in GOVERNORS {
                let outcome = sim
                    .run_faulted_with_scratch(
                        |_| make_governor(name).expect("corpus governor exists"),
                        &execs,
                        &stadvs::sim::FaultPlan::NONE,
                        &mut stadvs::sim::PlatformScratch::new(),
                    )
                    .unwrap_or_else(|e| {
                        panic!("{partitioner_name}/{name}/{seed} violated the hard guarantee: {e}")
                    });
                assert!(outcome.all_deadlines_met());
                // The per-core audit referee: exact periodic releases, no
                // overruns, no unattributed misses, on every core.
                let reports = sim
                    .audit(&outcome, &stadvs::sim::FaultPlan::NONE)
                    .expect("outcome matches the platform");
                assert_eq!(reports.len(), CORES);
                for (core, audit) in reports.iter().enumerate() {
                    assert!(
                        audit.is_clean(),
                        "{partitioner_name}/{name}/{seed} core {core} failed the audit: {audit}"
                    );
                }
            }
        }
    }
}
