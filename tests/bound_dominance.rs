//! Lower-bound dominance: the YDS clairvoyant optimum must never exceed any
//! governor's energy, and the bound hierarchy must hold:
//! `YDS ≤ oracle-static ≤ st-edf` (on average) `≤ no-dvs`.

use stadvs::analysis::{
    due_within, materialize_jobs, optimal_static_speed, yds_schedule, WorkKind,
};
use stadvs::experiments::{make_governor, WorkloadCase, STANDARD_LINEUP};
use stadvs::power::Processor;
use stadvs::sim::{SimConfig, Simulator};
use stadvs::workload::DemandPattern;

const HORIZON: f64 = 2.0;

fn cases() -> Vec<WorkloadCase> {
    let mut out = Vec::new();
    for (i, &u) in [0.3, 0.5, 0.7, 0.9].iter().enumerate() {
        for seed in 0..4u64 {
            out.push(WorkloadCase::synthetic(
                6,
                u,
                DemandPattern::Uniform { min: 0.4, max: 1.0 },
                seed + (i as u64) * 100,
            ));
        }
    }
    out
}

#[test]
fn yds_lower_bounds_every_governor() {
    let processor = Processor::ideal_continuous();
    for case in cases() {
        let jobs = materialize_jobs(&case.tasks, &case.exec, HORIZON);
        let due = due_within(&jobs, HORIZON);
        let bound = yds_schedule(&due, WorkKind::Actual).energy(processor.power_model());
        let sim = Simulator::new(
            case.tasks.clone(),
            processor.clone(),
            SimConfig::new(HORIZON).expect("valid horizon"),
        )
        .expect("feasible");
        for name in STANDARD_LINEUP {
            let mut governor = make_governor(name).expect("resolves");
            let out = sim.run(governor.as_mut(), &case.exec).expect("runs");
            assert!(
                bound <= out.total_energy() + 1e-9,
                "YDS bound {bound} exceeds {name} energy {} (U = {:.2})",
                out.total_energy(),
                case.tasks.utilization()
            );
        }
    }
}

#[test]
fn bound_hierarchy_holds() {
    let processor = Processor::ideal_continuous();
    let mut sums = (0.0, 0.0, 0.0, 0.0); // yds, oracle, st-edf, no-dvs
    for case in cases() {
        let jobs = materialize_jobs(&case.tasks, &case.exec, HORIZON);
        let due = due_within(&jobs, HORIZON);
        let yds = yds_schedule(&due, WorkKind::Actual).energy(processor.power_model());
        let oracle_speed =
            optimal_static_speed(&due, WorkKind::Actual).clamp(processor.min_speed().ratio(), 1.0);
        let sim = Simulator::new(
            case.tasks.clone(),
            processor.clone(),
            SimConfig::new(HORIZON).expect("valid horizon"),
        )
        .expect("feasible");

        let mut oracle = stadvs::baselines::OracleStatic::new(
            stadvs::power::Speed::new(oracle_speed).expect("in range"),
        );
        let oracle_energy = sim
            .run(&mut oracle, &case.exec)
            .expect("runs")
            .total_energy();
        let mut stedf = make_governor("st-edf").expect("resolves");
        let stedf_energy = sim
            .run(stedf.as_mut(), &case.exec)
            .expect("runs")
            .total_energy();
        let mut nodvs = make_governor("no-dvs").expect("resolves");
        let nodvs_energy = sim
            .run(nodvs.as_mut(), &case.exec)
            .expect("runs")
            .total_energy();

        // Per-case hard relations.
        assert!(yds <= oracle_energy + 1e-9, "YDS above the static oracle");
        assert!(stedf_energy <= nodvs_energy + 1e-9, "st-edf above no-dvs");
        sums.0 += yds;
        sums.1 += oracle_energy;
        sums.2 += stedf_energy;
        sums.3 += nodvs_energy;
    }
    // On average the on-line algorithm sits between the clairvoyant bounds
    // and the baseline.
    assert!(sums.0 <= sums.1 && sums.1 <= sums.2 + 1e-9 && sums.2 <= sums.3);
}

#[test]
fn worst_case_demand_collapses_bounds_to_static() {
    // With actual == WCET, the oracle static speed equals the worst-case
    // peak intensity, and YDS of the realized workload equals YDS of the
    // worst case.
    let case = WorkloadCase::synthetic(5, 0.6, DemandPattern::Constant { ratio: 1.0 }, 9);
    let jobs = materialize_jobs(&case.tasks, &case.exec, HORIZON);
    let due = due_within(&jobs, HORIZON);
    let actual = optimal_static_speed(&due, WorkKind::Actual);
    let worst = optimal_static_speed(&due, WorkKind::WorstCase);
    assert!((actual - worst).abs() < 1e-12);
}
