//! Deterministic replays of the shrunk counterexamples recorded in the
//! checked-in `*.proptest-regressions` files, so the fixes stay guarded
//! even when the property tests explore different random cases.

use stadvs::analysis::{
    materialize_jobs, minimum_static_speed, optimal_static_speed, validate_outcome, yds_schedule,
    WorkKind,
};
use stadvs::experiments::{make_governor, WorkloadCase};
use stadvs::power::{Processor, Speed};
use stadvs::sim::{
    ConstantRatio, Governor, MissPolicy, SchedulerView, SimConfig, Simulator, Task, TaskSet,
    WorstCase,
};
use stadvs::workload::{DemandPattern, TaskSetSpec};

struct Fixed(Speed);
impl Governor for Fixed {
    fn name(&self) -> &str {
        "fixed"
    }
    fn select_speed(&mut self, _: &SchedulerView<'_>, _: &stadvs::sim::ActiveJob) -> Speed {
        self.0
    }
}

/// `analysis_cross_check::oracle_speed_equals_yds_peak_and_is_tight`
/// shrunk to `seed = 0, n = 2, utilization = 0.2, ratio = 0.2`.
#[test]
fn oracle_speed_tightness_seed0() {
    let (seed, n, utilization, ratio) = (0u64, 2usize, 0.2f64, 0.2f64);
    let tasks = TaskSetSpec::new(n, utilization)
        .expect("valid")
        .with_seed(seed)
        .generate()
        .expect("generates");
    let exec = ConstantRatio::new(ratio);
    let horizon = 1.5;
    let jobs = materialize_jobs(&tasks, &exec, horizon);
    let jobs = stadvs::analysis::due_within(&jobs, horizon);
    if jobs.is_empty() {
        return;
    }
    let oracle = optimal_static_speed(&jobs, WorkKind::Actual);
    let yds_peak = yds_schedule(&jobs, WorkKind::Actual).peak_speed();
    assert!(
        (oracle - yds_peak).abs() < 1e-9,
        "oracle {oracle} != YDS peak {yds_peak}"
    );
    let sim = Simulator::new(
        tasks,
        Processor::ideal_continuous_with_floor(1.0e-6).expect("valid floor"),
        SimConfig::new(horizon)
            .expect("valid")
            .with_miss_policy(MissPolicy::Record),
    )
    .expect("feasible");
    if oracle <= 1.0 && oracle > 0.0 {
        let out = sim
            .run(
                &mut Fixed(Speed::new(oracle.min(1.0)).expect("valid")),
                &exec,
            )
            .expect("runs");
        assert_eq!(out.miss_count(), 0, "oracle speed missed");
        if oracle < 0.95 {
            let slow = sim
                .run(&mut Fixed(Speed::new(oracle * 0.95).expect("valid")), &exec)
                .expect("runs");
            assert!(slow.miss_count() > 0, "oracle speed {oracle} is not tight");
        }
    }
}

/// `analysis_cross_check::minimum_static_speed_is_sufficient_for_constrained_deadlines`
/// shrunk to `seed = 0, n = 2, utilization = 0.5839579715603067,
/// fraction = 0.55`.
#[test]
fn minimum_static_speed_constrained_seed0() {
    let (seed, n, utilization, fraction) = (0u64, 2usize, 0.5839579715603067f64, 0.55f64);
    let base = TaskSetSpec::new(n, utilization)
        .expect("valid")
        .with_seed(seed)
        .generate()
        .expect("generates");
    let tasks = TaskSet::new(
        base.iter()
            .map(|(_, t)| {
                let deadline = (fraction * t.period()).max(t.wcet());
                Task::with_deadline(t.wcet(), t.period(), deadline).expect("valid")
            })
            .collect(),
    )
    .expect("non-empty");
    if tasks.density() > 1.0 {
        return;
    }
    let speed = minimum_static_speed(&tasks);
    assert!(speed <= 1.0 + 1e-9, "density-bounded set infeasible?");
    let sim = Simulator::new(
        tasks,
        Processor::ideal_continuous_with_floor(1.0e-6).expect("valid floor"),
        SimConfig::new(3.0)
            .expect("valid")
            .with_miss_policy(MissPolicy::Fail),
    )
    .expect("feasible");
    let clamped = Speed::new((speed + 1e-9).min(1.0)).expect("valid");
    let out = sim.run(&mut Fixed(clamped), &WorstCase);
    assert!(
        out.is_ok(),
        "minimum static speed {speed} missed: {:?}",
        out.err()
    );
}

fn constrained_case(
    n_tasks: usize,
    utilization: f64,
    deadline_fraction: f64,
    bcet: f64,
    seed: u64,
) {
    let base = WorkloadCase::synthetic(
        n_tasks,
        utilization,
        DemandPattern::Uniform {
            min: bcet,
            max: 1.0,
        },
        seed,
    );
    let tasks = TaskSet::new(
        base.tasks
            .iter()
            .map(|(_, t)| {
                let deadline = (deadline_fraction * t.period()).max(t.wcet());
                Task::with_deadline(t.wcet(), t.period(), deadline).expect("valid")
            })
            .collect(),
    )
    .expect("non-empty");
    let processor = Processor::ideal_continuous();
    let sim = Simulator::new(
        tasks.clone(),
        processor.clone(),
        SimConfig::new(1.5)
            .expect("valid horizon")
            .with_miss_policy(MissPolicy::Fail)
            .with_trace(true),
    )
    .expect("density bounded above");
    for name in [
        "no-dvs",
        "static-edf",
        "lpps-edf",
        "dra",
        "dra-ote",
        "feedback-edf",
        "st-edf",
        "st-edf[r]",
        "st-edf[a]",
        "st-edf[d]",
        "st-edf-pace",
    ] {
        let mut governor = make_governor(name).expect("resolves");
        let outcome = sim
            .run(governor.as_mut(), &base.exec)
            .unwrap_or_else(|e| panic!("{name} missed under constrained deadlines: {e}"));
        let report = validate_outcome(&outcome, &tasks, &processor);
        assert!(report.is_clean(), "{name} failed the audit: {report}");
    }
}

/// `hard_guarantee::constrained_deadlines_preserve_the_guarantee` shrunk to
/// `n_tasks = 3, utilization = 0.3387182379962101, deadline_fraction = 0.6,
/// bcet = 0.0, seed = 479033`.
#[test]
fn constrained_deadlines_seed_479033() {
    constrained_case(3, 0.3387182379962101, 0.6, 0.0, 479033);
}

/// `hard_guarantee::constrained_deadlines_preserve_the_guarantee` shrunk to
/// `n_tasks = 6, utilization = 0.1, deadline_fraction = 0.6986663226100975,
/// bcet = 0.9711453377050555, seed = 486028`.
#[test]
fn constrained_deadlines_seed_486028() {
    constrained_case(6, 0.1, 0.6986663226100975, 0.9711453377050555, 486028);
}
