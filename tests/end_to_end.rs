//! End-to-end smoke of the full pipeline: every registered experiment runs
//! at quick scale, produces a well-formed table, and the headline shape
//! claims of the reproduction hold.

use stadvs::experiments::experiments::{all, by_id, RunOptions};
use stadvs::experiments::{write_csv, write_markdown};

#[test]
fn every_registered_experiment_runs_and_renders() {
    let mut opts = RunOptions::quick();
    opts.replications = 2;
    for experiment in all() {
        let table = (experiment.run)(&opts);
        assert!(!table.rows.is_empty(), "{} produced no rows", experiment.id);
        let md = table.to_markdown();
        assert!(md.contains("###"), "{} markdown malformed", experiment.id);
        let csv = table.to_csv();
        assert!(
            csv.lines().count() == table.rows.len() + 1,
            "{} CSV row count mismatch",
            experiment.id
        );
        // Result files can be written to a scratch directory.
        let dir = std::env::temp_dir().join("stadvs-e2e");
        write_csv(&table, dir.join(format!("{}.csv", experiment.id))).expect("csv writes");
        write_markdown(&table, dir.join(format!("{}.md", experiment.id))).expect("md writes");
    }
}

/// The reproduction's headline claim, end to end: on the fig1 sweep the
/// slack-analysis algorithm beats the weakest dynamic baseline (lppsEDF)
/// and the static optimum at every utilization, and tracks the best curve.
#[test]
fn headline_shape_holds_at_moderate_scale() {
    let mut opts = RunOptions::quick();
    opts.replications = 4;
    opts.horizon = 3.0;
    let experiment = by_id("fig1_util").expect("registered");
    let table = (experiment.run)(&opts);

    let st = table.column("st-edf").expect("present");
    let lpps = table.column("lpps-edf").expect("present");
    let static_edf = table.column("static-edf").expect("present");
    let dra = table.column("dra").expect("present");

    let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&st) < mean(&lpps),
        "st-edf ({}) should beat lpps-edf ({})",
        mean(&st),
        mean(&lpps)
    );
    assert!(
        mean(&st) < mean(&static_edf),
        "st-edf ({}) should beat static ({})",
        mean(&st),
        mean(&static_edf)
    );
    assert!(
        mean(&st) <= mean(&dra) + 0.01,
        "st-edf ({}) should be at least as good as dra ({})",
        mean(&st),
        mean(&dra)
    );
    // Normalized energy rises with utilization for the dynamic schemes.
    assert!(st.first().expect("rows") < st.last().expect("rows"));
}
