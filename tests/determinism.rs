//! Full-stack determinism: identical seeds must reproduce identical
//! workloads, simulations, and experiment aggregates — across repeated runs
//! and across the parallel/serial execution paths.

use stadvs::experiments::{Comparison, WorkloadCase};
use stadvs::power::Processor;
use stadvs::sim::{SimConfig, Simulator};
use stadvs::workload::{DemandPattern, ExecutionModel, TaskSetSpec};
use stadvs_sim::ExecutionSource;

#[test]
fn workload_generation_is_reproducible() {
    for seed in [0u64, 1, 42, 987_654_321] {
        let a = TaskSetSpec::new(7, 0.65)
            .expect("valid")
            .with_seed(seed)
            .generate()
            .expect("generates");
        let b = TaskSetSpec::new(7, 0.65)
            .expect("valid")
            .with_seed(seed)
            .generate()
            .expect("generates");
        assert_eq!(a, b);
    }
}

#[test]
fn demand_models_are_order_independent() {
    let tasks = TaskSetSpec::new(4, 0.5)
        .expect("valid")
        .with_seed(3)
        .generate()
        .expect("generates");
    let model = ExecutionModel::new(DemandPattern::Bursty {
        low: 0.2,
        high: 0.9,
        burst_jobs: 7,
        duty: 0.4,
    })
    .expect("valid")
    .with_seed(5);
    let (id, task) = tasks.iter().next().expect("non-empty");
    let forward: Vec<f64> = (0..50).map(|i| model.actual_work(id, task, i)).collect();
    let mut backward: Vec<f64> = (0..50)
        .rev()
        .map(|i| model.actual_work(id, task, i))
        .collect();
    backward.reverse();
    assert_eq!(forward, backward);
}

#[test]
fn simulations_replay_bit_identically() {
    let case = WorkloadCase::synthetic(6, 0.8, DemandPattern::Uniform { min: 0.3, max: 1.0 }, 77);
    let sim = Simulator::new(
        case.tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(2.0).expect("valid").with_trace(true),
    )
    .expect("feasible");
    let mut g1 = stadvs::core::SlackEdf::new();
    let mut g2 = stadvs::core::SlackEdf::new();
    let a = sim.run(&mut g1, &case.exec).expect("runs");
    let b = sim.run(&mut g2, &case.exec).expect("runs");
    assert_eq!(a, b);
}

#[test]
fn parallel_and_serial_comparison_agree() {
    let comparison = Comparison::new(Processor::ideal_continuous(), 1.0)
        .with_governors(["no-dvs", "dra", "st-edf"]);
    let cases: Vec<WorkloadCase> = (0..6)
        .map(|s| WorkloadCase::synthetic(5, 0.7, DemandPattern::Uniform { min: 0.5, max: 1.0 }, s))
        .collect();
    let parallel = comparison.run_cases_raw(&cases);
    let serial: Vec<_> = cases.iter().map(|c| comparison.run_case(c)).collect();
    assert_eq!(parallel, serial);
    // And the whole thing replays identically.
    assert_eq!(parallel, comparison.run_cases_raw(&cases));
}
