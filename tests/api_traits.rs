//! API-contract checks: public data types implement the common traits the
//! Rust API guidelines require (Debug/Clone/Send/Sync, serde for data
//! structures, std::error::Error for error types).

use serde::{de::DeserializeOwned, Serialize};

fn is_data_structure<T: Serialize + DeserializeOwned + Clone + std::fmt::Debug>() {}
fn is_send_sync<T: Send + Sync>() {}
fn is_error<T: std::error::Error + Send + Sync + 'static>() {}

#[test]
fn data_structures_serialize() {
    is_data_structure::<stadvs::power::Speed>();
    is_data_structure::<stadvs::power::Processor>();
    is_data_structure::<stadvs::power::EnergyBreakdown>();
    is_data_structure::<stadvs::sim::Task>();
    is_data_structure::<stadvs::sim::TaskSet>();
    is_data_structure::<stadvs::sim::JobRecord>();
    is_data_structure::<stadvs::sim::SimOutcome>();
    is_data_structure::<stadvs::sim::SimConfig>();
    is_data_structure::<stadvs::workload::TaskSetSpec>();
    is_data_structure::<stadvs::workload::ExecutionModel>();
    is_data_structure::<stadvs::analysis::JobInstance>();
    is_data_structure::<stadvs::analysis::SpeedSchedule>();
    is_data_structure::<stadvs::analysis::ValidationReport>();
    is_data_structure::<stadvs::core::SlackEdfConfig>();
    is_data_structure::<stadvs::experiments::Table>();
}

#[test]
fn core_types_are_send_sync() {
    is_send_sync::<stadvs::power::Processor>();
    is_send_sync::<stadvs::sim::Simulator>();
    is_send_sync::<stadvs::sim::SimOutcome>();
    is_send_sync::<stadvs::core::SlackEdf>();
    is_send_sync::<stadvs::baselines::Dra>();
    is_send_sync::<stadvs::workload::ExecutionModel>();
}

#[test]
fn error_types_are_well_behaved() {
    is_error::<stadvs::power::PowerError>();
    is_error::<stadvs::sim::SimError>();
    is_error::<stadvs::workload::WorkloadError>();
}

#[test]
fn governors_are_object_safe_and_boxable() {
    use stadvs::sim::Governor;
    let suite: Vec<Box<dyn Governor>> = stadvs::baselines::baseline_suite();
    assert!(suite.len() >= 7);
    let named: Vec<&str> = suite.iter().map(|g| g.name()).collect();
    assert!(named.contains(&"st-edf") || named.contains(&"no-dvs"));
}

#[test]
fn serde_round_trip_through_speed_newtype() {
    // Speed (de)serializes through its f64 representation; exercise the
    // TryFrom path both ways without pulling in a serde format crate.
    let s = stadvs::power::Speed::new(0.625).expect("valid");
    let raw: f64 = s.into();
    let back = stadvs::power::Speed::try_from(raw).expect("round-trips");
    assert_eq!(s, back);
    assert!(stadvs::power::Speed::try_from(1.5).is_err());
}
