//! The differential sporadic harness: every sporadic-capable governor,
//! same mixed workload, same seeded arrival processes — compared against
//! the `no-dvs` reference run.
//!
//! Three facts pin the sporadic subsystem to the guarantees:
//!
//! 1. **Arrivals are governor-invariant.** Inter-arrival gaps are pure
//!    seeded functions of `(task seed, job index)`, so every governor
//!    must observe the *identical* job stream (checked bit-for-bit
//!    against the `no-dvs` run) and the same run must replay
//!    bit-identically.
//! 2. **Admission holds at release time.** Every observed gap is at least
//!    the task's `min_interarrival` (= its period) and matches the
//!    seeded draw exactly, so sporadic arrivals never precede the
//!    periodic lattice — the same delay-only safety class as release
//!    jitter, which is why delayed arrivals can never overload a schedule
//!    that was feasible under periodic arrivals.
//! 3. **Hard tasks are untouched.** `MissPolicy::Fail` stays armed and
//!    zero misses are tolerated for the whole mixed set.
//!
//! The lineup is derived from the governor capability table: `la-edf` is
//! excluded (its lookahead defers work against *future periodic*
//! releases; see DESIGN.md §10), exactly as it is under the jitter
//! regimes — this harness and the experiments can never disagree about
//! who is sporadic-safe.
//!
//! Case counts: 64 per property by default (each case exercises every
//! capable governor), raised in CI's full job via `STADVS_PROPTEST_CASES`.

// `ProptestConfig` grows fields across proptest releases; keep the
// `..default()` spread even when every currently-visible field is set.
#![allow(clippy::needless_update)]

use proptest::prelude::*;
use stadvs::experiments::{governor_caps, make_governor};
use stadvs::power::Processor;
use stadvs::sim::{
    audit_outcome, FaultPlan, MissPolicy, SimConfig, SimOutcome, Simulator, TaskKind, TaskSet,
};
use stadvs::workload::{DemandPattern, ExecutionModel, ModelMix, TaskSetSpec};

const GOVERNORS: &[&str] = &[
    "no-dvs",
    "static-edf",
    "lpps-edf",
    "cc-edf",
    "dra",
    "dra-ote",
    "feedback-edf",
    "la-edf",
    "st-edf",
    "st-edf[r]",
    "st-edf[a]",
    "st-edf[d]",
    "st-edf-pace",
    "st-edf-cs",
];

/// The governors whose safety arguments extend to sporadic (delayed)
/// arrivals — derived from the registry's capability table (everything
/// except `la-edf`; see the module docs).
fn sporadic_safe_governors() -> Vec<&'static str> {
    GOVERNORS
        .iter()
        .copied()
        .filter(|name| {
            governor_caps(name)
                .expect("lineup names are known")
                .sporadic
        })
        .collect()
}

const HORIZON: f64 = 1.2;

fn cases() -> u32 {
    std::env::var("STADVS_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// A synthetic mixed case: the first `sporadic` tasks draw seeded
/// inter-arrival stretches up to `burst` periods; the rest stay hard.
fn mixed_case(
    n_tasks: usize,
    utilization: f64,
    sporadic: usize,
    burst: f64,
    bcet: f64,
    seed: u64,
) -> (TaskSet, ExecutionModel) {
    let tasks = TaskSetSpec::new(n_tasks, utilization)
        .expect("parameters in range")
        .with_model_mix(
            ModelMix::new()
                .with_sporadic(sporadic, burst)
                .expect("burst in range"),
        )
        .expect("mix fits")
        .with_seed(seed)
        .generate()
        .expect("generation succeeds");
    let exec = ExecutionModel::new(DemandPattern::Uniform {
        min: bcet,
        max: 1.0,
    })
    .expect("pattern in range")
    .with_seed(seed ^ 0x5EED_5EED_5EED_5EED);
    (tasks, exec)
}

/// The governor-invariant part of an outcome: every released job's
/// identity, release, deadline, WCET, and actual demand (exact bits),
/// sorted.
fn job_signature(out: &SimOutcome) -> Vec<(usize, u64, u64, u64, u64, u64)> {
    let mut sig: Vec<_> = out
        .jobs
        .iter()
        .map(|r| {
            (
                r.id.task.0,
                r.id.index,
                r.release.to_bits(),
                r.deadline.to_bits(),
                r.wcet.to_bits(),
                r.actual.to_bits(),
            )
        })
        .collect();
    sig.sort_unstable();
    sig
}

fn run_governor(tasks: &TaskSet, exec: &ExecutionModel, name: &str) -> Result<SimOutcome, String> {
    let sim = Simulator::new(
        tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(HORIZON)
            .expect("valid horizon")
            .with_miss_policy(MissPolicy::Fail),
    )
    .expect("generated sets are feasible");
    let mut governor = make_governor(name).expect("governor resolves");
    sim.run(governor.as_mut(), exec)
        .map_err(|e| format!("{name} violated the hard guarantee: {e}"))
}

/// Checks every sporadic task's observed release sequence: gaps at least
/// the period and equal to the task's seeded draws.
fn assert_admission(out: &SimOutcome, tasks: &TaskSet) -> Result<(), TestCaseError> {
    for (id, task) in tasks.iter() {
        if !matches!(task.kind(), TaskKind::Sporadic { .. }) {
            continue;
        }
        // `out.jobs` is sorted by (task, index), so releases come out in
        // arrival order.
        let releases: Vec<f64> = out
            .jobs
            .iter()
            .filter(|r| r.id.task == id)
            .map(|r| r.release)
            .collect();
        for (i, pair) in releases.windows(2).enumerate() {
            let gap = pair[1] - pair[0];
            prop_assert!(
                gap >= task.period() - 1e-9,
                "task {id}: gap {gap} compressed below the period {}",
                task.period()
            );
            let expected = task.arrival_gap(i as u64 + 1);
            prop_assert!(
                (gap - expected).abs() < 1e-9,
                "task {id}: gap {gap} != seeded draw {expected} at #{i}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// In-contract mixed sporadic sets: every capable governor meets every
    /// deadline (`MissPolicy::Fail` armed), observes the bit-identical job
    /// stream of the `no-dvs` reference, respects every minimum
    /// inter-arrival separation, and passes the model-aware audit.
    #[test]
    fn in_contract_sporadic_sets_never_miss_and_agree(
        n_tasks in 2usize..7,
        utilization in 0.2f64..=0.9,
        sporadic in 1usize..7,
        burst in 0.0f64..=1.5,
        bcet in 0.1f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        let sporadic = sporadic.min(n_tasks);
        let (tasks, exec) = mixed_case(n_tasks, utilization, sporadic, burst, bcet, seed);

        let reference = run_governor(&tasks, &exec, "no-dvs").map_err(TestCaseError::fail)?;
        let ref_sig = job_signature(&reference);
        prop_assert!(reference.models.sporadic_jobs > 0, "no sporadic job released");
        prop_assert_eq!(reference.models.skips, 0, "sporadic jobs are never skipped");

        for name in sporadic_safe_governors() {
            let outcome = run_governor(&tasks, &exec, name).map_err(TestCaseError::fail)?;
            prop_assert_eq!(outcome.miss_count(), 0, "{} missed in-contract", name);
            prop_assert_eq!(
                &job_signature(&outcome), &ref_sig,
                "{} observed a different arrival stream than no-dvs", name
            );
            prop_assert_eq!(
                outcome.models.sporadic_jobs, reference.models.sporadic_jobs,
                "{} counted a different number of sporadic jobs", name
            );
            assert_admission(&outcome, &tasks)?;
            let audit = audit_outcome(&outcome, &tasks, &FaultPlan::NONE);
            prop_assert!(audit.is_clean(), "{} failed the audit: {}", name, audit);
        }
    }

    /// Sporadic generation is a deterministic function of the seed: the
    /// same governor run twice replays bit-identically — job records and
    /// the full model report — for any burst, including the degenerate
    /// `burst = 0` process (sporadic separation with periodic arrivals).
    #[test]
    fn sporadic_arrivals_replay_bit_identically(
        n_tasks in 2usize..6,
        utilization in 0.2f64..=0.8,
        burst in 0.0f64..=2.0,
        bcet in 0.2f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        let (tasks, exec) = mixed_case(n_tasks, utilization, n_tasks.min(2), burst, bcet, seed);
        for name in ["st-edf", "dra"] {
            let a = run_governor(&tasks, &exec, name).map_err(TestCaseError::fail)?;
            let b = run_governor(&tasks, &exec, name).map_err(TestCaseError::fail)?;
            prop_assert_eq!(&a.jobs, &b.jobs, "{}'s job records did not replay", name);
            prop_assert_eq!(&a.models, &b.models, "{}'s model report did not replay", name);
            prop_assert_eq!(a.miss_count(), 0, "{} missed in-contract", name);
        }
    }
}

/// The exclusion list is the capability table, not a name list: exactly
/// `la-edf` is dropped from this harness's lineup.
#[test]
fn sporadic_exclusions_are_table_derived() {
    let lineup = sporadic_safe_governors();
    assert!(!lineup.contains(&"la-edf"));
    assert_eq!(lineup.len(), GOVERNORS.len() - 1);
}
