//! The central property of the whole repository: **every governor meets
//! every deadline on every feasible workload** — enforced with randomized
//! task sets, demand patterns, and utilizations, under the strict
//! [`MissPolicy::Fail`] policy plus the independent trace audit.

// `ProptestConfig` grows fields across proptest releases; keep the
// `..default()` spread even when every currently-visible field is set.
#![allow(clippy::needless_update)]

use proptest::prelude::*;
use stadvs::analysis::validate_outcome;
use stadvs::experiments::{make_governor, WorkloadCase};
use stadvs::power::Processor;
use stadvs::sim::{
    audit_outcome, FaultPlan, MissPolicy, SimConfig, SimOutcome, Simulator, TaskSet,
};
use stadvs::workload::DemandPattern;

const GOVERNORS: &[&str] = &[
    "no-dvs",
    "static-edf",
    "lpps-edf",
    "cc-edf",
    "dra",
    "dra-ote",
    "feedback-edf",
    "la-edf",
    "st-edf",
    "st-edf[r]",
    "st-edf[a]",
    "st-edf[d]",
    "st-edf-pace",
    "st-edf-cs",
];

/// Default case count, raised in CI's full (non-quick) job via
/// `STADVS_PROPTEST_CASES`.
fn cases() -> u32 {
    std::env::var("STADVS_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// The shared referee: the fault-unaware trace validator (deadlines, trace
/// tiling, energy recomputation) *and* the fault-aware release/attribution
/// audit, here with the empty plan — on fault-free runs any overrun or
/// unattributed miss it finds is an engine bug.
fn referee(outcome: &SimOutcome, tasks: &TaskSet, processor: &Processor) -> Result<(), String> {
    let report = validate_outcome(outcome, tasks, processor);
    if !report.is_clean() {
        return Err(format!("{report}"));
    }
    let audit = audit_outcome(outcome, tasks, &FaultPlan::NONE);
    if !audit.is_clean() {
        return Err(format!("{audit}"));
    }
    Ok(())
}

fn pattern_strategy() -> impl Strategy<Value = DemandPattern> {
    prop_oneof![
        (0.0..=1.0_f64).prop_map(|ratio| DemandPattern::Constant { ratio }),
        (0.0..=1.0_f64).prop_map(|min| DemandPattern::Uniform { min, max: 1.0 }),
        (0.1..=0.9_f64, 0.05..=0.4_f64).prop_map(|(mean, std_dev)| DemandPattern::Normal {
            mean,
            std_dev,
            floor: 0.01,
        }),
        (0.05..=0.5_f64, 0.05..=0.45_f64).prop_map(|(low, spread)| DemandPattern::Bimodal {
            low,
            high: (low + spread + 0.1).min(1.0),
            high_probability: 0.3,
        }),
        (2u32..=30).prop_map(|burst_jobs| DemandPattern::Bursty {
            low: 0.1,
            high: 0.95,
            burst_jobs,
            duty: 0.5,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// Random (n, U, pattern, seed) → all governors, zero misses, clean
    /// audit.
    #[test]
    fn no_governor_ever_misses(
        n_tasks in 2usize..10,
        utilization in 0.1f64..=1.0,
        pattern in pattern_strategy(),
        seed in 0u64..1_000_000,
    ) {
        let case = WorkloadCase::synthetic(n_tasks, utilization, pattern, seed);
        let processor = Processor::ideal_continuous();
        let sim = Simulator::new(
            case.tasks.clone(),
            processor.clone(),
            SimConfig::new(1.5)
                .expect("valid horizon")
                .with_miss_policy(MissPolicy::Fail)
                .with_trace(true),
        )
        .expect("generated sets are feasible");
        for name in GOVERNORS {
            let mut governor = make_governor(name).expect("governor resolves");
            let outcome = sim
                .run(governor.as_mut(), &case.exec)
                .unwrap_or_else(|e| panic!("{name} violated the hard guarantee: {e}"));
            let verdict = referee(&outcome, &case.tasks, &processor);
            prop_assert!(
                verdict.is_ok(),
                "{name} failed the audit: {}",
                verdict.unwrap_err()
            );
        }
    }

    /// Discrete platforms quantize speeds up; the guarantee must survive
    /// coarse operating-point grids.
    #[test]
    fn discrete_platforms_preserve_the_guarantee(
        levels in 2usize..8,
        utilization in 0.2f64..=1.0,
        bcet in 0.0f64..=1.0,
        seed in 0u64..100_000,
    ) {
        let case = WorkloadCase::synthetic(
            5,
            utilization,
            DemandPattern::Uniform { min: bcet, max: 1.0 },
            seed,
        );
        let processor = Processor::uniform_discrete(levels).expect("levels >= 1");
        let sim = Simulator::new(
            case.tasks.clone(),
            processor,
            SimConfig::new(1.0)
                .expect("valid horizon")
                .with_miss_policy(MissPolicy::Fail),
        )
        .expect("feasible");
        for name in ["static-edf", "cc-edf", "dra", "la-edf", "st-edf"] {
            let mut governor = make_governor(name).expect("resolves");
            let out = sim.run(governor.as_mut(), &case.exec);
            prop_assert!(out.is_ok(), "{name} missed on {levels}-level platform");
            let audit = audit_outcome(&out.unwrap(), &case.tasks, &FaultPlan::NONE);
            prop_assert!(audit.is_clean(), "{name} failed the audit: {audit}");
        }
    }

    /// Constrained deadlines (`D < T`) break the naive `1/U` canonical
    /// stretch; the governors whose arguments extend (the slack-analysis
    /// family, the canonical-stretch baselines rebased on the dbf-intensity
    /// speed, and the stretch/full-speed schemes) must stay spotless.
    /// (ccEDF and laEDF are excluded: their published utilization-bound
    /// arguments genuinely assume implicit deadlines.)
    #[test]
    fn constrained_deadlines_preserve_the_guarantee(
        n_tasks in 2usize..7,
        utilization in 0.1f64..=0.55,
        deadline_fraction in 0.6f64..=1.0,
        bcet in 0.0f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        use stadvs::sim::{Task, TaskSet};
        let base = WorkloadCase::synthetic(
            n_tasks,
            utilization,
            DemandPattern::Uniform { min: bcet, max: 1.0 },
            seed,
        );
        // Shrink every deadline; density stays ≤ U / fraction ≤ 0.92.
        let tasks = TaskSet::new(
            base.tasks
                .iter()
                .map(|(_, t)| {
                    let deadline = (deadline_fraction * t.period()).max(t.wcet());
                    Task::with_deadline(t.wcet(), t.period(), deadline).expect("valid")
                })
                .collect(),
        )
        .expect("non-empty");
        let processor = Processor::ideal_continuous();
        let sim = Simulator::new(
            tasks.clone(),
            processor.clone(),
            SimConfig::new(1.5)
                .expect("valid horizon")
                .with_miss_policy(MissPolicy::Fail)
                .with_trace(true),
        )
        .expect("density bounded above");
        for name in [
            "no-dvs",
            "static-edf",
            "lpps-edf",
            "dra",
            "dra-ote",
            "feedback-edf",
            "st-edf",
            "st-edf[r]",
            "st-edf[a]",
            "st-edf[d]",
            "st-edf-pace",
        ] {
            let mut governor = make_governor(name).expect("resolves");
            let outcome = sim
                .run(governor.as_mut(), &base.exec)
                .unwrap_or_else(|e| panic!("{name} missed under constrained deadlines: {e}"));
            let verdict = referee(&outcome, &tasks, &processor);
            prop_assert!(
                verdict.is_ok(),
                "{name} failed the audit: {}",
                verdict.unwrap_err()
            );
        }
    }

    /// Asynchronous releases (random per-task phases) must not break any
    /// governor: every safety argument in the repository is phase-agnostic
    /// (synchronous arrivals are the worst case, but bookkeeping bugs love
    /// offsets).
    #[test]
    fn random_phases_preserve_the_guarantee(
        n_tasks in 2usize..8,
        utilization in 0.1f64..=1.0,
        bcet in 0.0f64..=1.0,
        seed in 0u64..1_000_000,
    ) {
        use stadvs::workload::{ExecutionModel, TaskSetSpec};
        let tasks = TaskSetSpec::new(n_tasks, utilization)
            .expect("valid")
            .with_random_phases(true)
            .with_seed(seed)
            .generate()
            .expect("generates");
        let exec = ExecutionModel::uniform_bcet(bcet)
            .expect("valid")
            .with_seed(seed ^ 0xFEED);
        let processor = Processor::ideal_continuous();
        let sim = Simulator::new(
            tasks.clone(),
            processor.clone(),
            SimConfig::new(1.5)
                .expect("valid horizon")
                .with_miss_policy(MissPolicy::Fail)
                .with_trace(true),
        )
        .expect("feasible");
        for name in GOVERNORS {
            let mut governor = make_governor(name).expect("resolves");
            let outcome = sim
                .run(governor.as_mut(), &exec)
                .unwrap_or_else(|e| panic!("{name} missed with phases: {e}"));
            let verdict = referee(&outcome, &tasks, &processor);
            prop_assert!(
                verdict.is_ok(),
                "{name} failed the audit: {}",
                verdict.unwrap_err()
            );
        }
    }

    /// Hard tasks keep the zero-miss guarantee when co-scheduled with
    /// weakly-hard and sporadic tasks under every fault regime: skips,
    /// stretched arrivals, in- and out-of-contract overruns, jitter, and
    /// dropped switches may degrade the model-bearing tasks, but a hard
    /// miss outside the contamination closure is an algorithm bug.
    /// (`la-edf` is excluded by the capability table: the sets carry
    /// sporadic arrivals.)
    #[test]
    fn mixed_models_preserve_the_hard_guarantee_under_faults(
        n_tasks in 3usize..8,
        utilization in 0.2f64..=0.9,
        weakly_hard in 1usize..3,
        sporadic in 1usize..3,
        k in 2u32..=4,
        burst in 0.0f64..=1.0,
        bcet in 0.1f64..=1.0,
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        overrun_p in 0.0f64..=0.4,
        factor in 0.5f64..=2.0,
        jitter_p in 0.0f64..=0.4,
        jitter_frac in 0.0f64..=0.3,
        drop_p in 0.0f64..=0.3,
    ) {
        use stadvs::experiments::governor_caps;
        use stadvs::sim::OverrunPolicy;
        use stadvs::workload::{ExecutionModel, ModelMix, TaskSetSpec};
        // Keep at least one hard task in every set — the property under
        // test is *their* guarantee.
        let weakly_hard = weakly_hard.min(n_tasks - 2);
        let sporadic = sporadic.min(n_tasks - 1 - weakly_hard);
        let tasks = TaskSetSpec::new(n_tasks, utilization)
            .expect("valid")
            .with_model_mix(
                ModelMix::new()
                    .with_weakly_hard(weakly_hard, 1, k)
                    .expect("contract in range")
                    .with_sporadic(sporadic, burst)
                    .expect("burst in range"),
            )
            .expect("mix fits")
            .with_seed(seed)
            .generate()
            .expect("generates");
        let exec = ExecutionModel::uniform_bcet(bcet)
            .expect("valid")
            .with_seed(seed ^ 0xFEED);
        let plan = FaultPlan::new(fault_seed)
            .with_overrun(overrun_p, factor).expect("valid channel")
            .with_release_jitter(jitter_p, jitter_frac).expect("valid channel")
            .with_switch_drops(drop_p).expect("valid channel")
            .with_policy_override(OverrunPolicy::CompleteAtMax);
        let processor = Processor::ideal_continuous();
        let sim = Simulator::new(
            tasks.clone(),
            processor,
            SimConfig::new(1.2)
                .expect("valid horizon")
                .with_miss_policy(MissPolicy::Fail),
        )
        .expect("feasible");
        for name in GOVERNORS
            .iter()
            .filter(|n| governor_caps(n).expect("lineup names are known").sporadic)
        {
            let mut governor = make_governor(name).expect("resolves");
            let outcome = sim
                .run_faulted(governor.as_mut(), &exec, &plan)
                .unwrap_or_else(|e| panic!("{name} violated the hard guarantee: {e}"));
            prop_assert_eq!(
                outcome.unattributed_misses(), 0,
                "{}: miss outside the contamination closure in a mixed set", name
            );
            if factor <= 1.0 {
                prop_assert_eq!(outcome.miss_count(), 0, "{} missed in-contract", name);
            }
            // Hard jobs must never miss without fault attribution, and
            // must never be skipped.
            for r in outcome.jobs.iter().filter(|r| tasks.task(r.id.task).is_hard()) {
                prop_assert!(
                    !r.missed(outcome.horizon) || outcome.faults.is_contaminated(r.id),
                    "{}: hard job {:?} missed uncontaminated", name, r.id
                );
            }
            prop_assert!(
                outcome.models.skipped.iter().all(|id| !tasks.task(id.task).is_hard()),
                "{}: a hard job was skipped", name
            );
            let audit = audit_outcome(&outcome, &tasks, &plan);
            prop_assert!(audit.is_clean(), "{} failed the audit: {}", name, audit);
        }
    }

    /// With transition overhead, the overhead-aware variant must still be
    /// spotless (the oblivious ones are allowed to fail here — that hazard
    /// is the point of the fig5 experiment).
    #[test]
    fn overhead_aware_variant_is_always_safe(
        latency_us in 0.0f64..=1000.0,
        utilization in 0.2f64..=1.0,
        seed in 0u64..100_000,
    ) {
        use stadvs::power::{TransitionEnergy, TransitionOverhead};
        let case = WorkloadCase::synthetic(
            6,
            utilization,
            DemandPattern::Uniform { min: 0.3, max: 1.0 },
            seed,
        );
        let overhead = TransitionOverhead::new(
            latency_us * 1.0e-6,
            TransitionEnergy::Constant(1.0e-6),
        )
        .expect("valid overhead");
        let processor = Processor::ideal_continuous().with_overhead(overhead);
        let sim = Simulator::new(
            case.tasks.clone(),
            processor,
            SimConfig::new(1.5)
                .expect("valid horizon")
                .with_miss_policy(MissPolicy::Fail),
        )
        .expect("feasible");
        let mut governor = make_governor("st-edf-oa").expect("resolves");
        let out = sim.run(governor.as_mut(), &case.exec);
        prop_assert!(
            out.is_ok(),
            "st-edf-oa missed at {latency_us} µs: {:?}",
            out.err()
        );
        let audit = audit_outcome(&out.unwrap(), &case.tasks, &FaultPlan::NONE);
        prop_assert!(audit.is_clean(), "st-edf-oa failed the audit: {audit}");
    }
}
