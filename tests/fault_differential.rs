//! The differential fault harness: every governor, same workload, same
//! fault plan — compared against the `no-dvs` reference run.
//!
//! Two facts pin the fault subsystem to the hard-deadline guarantee:
//!
//! 1. **Injection is governor-invariant.** Releases, deadlines, WCETs, and
//!    post-injection actual demands are decided by the plan and the
//!    workload alone; every governor must observe the *identical* job
//!    stream (checked bit-for-bit against the `no-dvs` run).
//! 2. **Only injected overruns may miss.** With every overrun factor
//!    ≤ 1.0 the plan stays inside the WCET contract, so *zero* misses are
//!    tolerated under [`MissPolicy::Fail`]. With factors > 1.0 the
//!    contract is violated on purpose — and `Fail` still runs, because it
//!    only fires on *unattributed* misses: an error here means a governor
//!    (not the injection) broke the guarantee.
//!
//! Case counts: 64 per property by default (each case exercises every
//! governor), raised in CI's full job via `STADVS_PROPTEST_CASES`.
//!
//! **laEDF is excluded from the jitter-bearing properties** (and covered
//! by a jitter-free property instead): its published deferral argument
//! predicts every next arrival *exactly at* the task's current deadline —
//! strict periodicity — and this harness empirically refutes the
//! extension to delayed (sporadic) releases, where laEDF alone of the
//! fourteen governors misses deadlines. See DESIGN.md §10.

// `ProptestConfig` grows fields across proptest releases; keep the
// `..default()` spread even when every currently-visible field is set.
#![allow(clippy::needless_update)]

use proptest::prelude::*;
use stadvs::experiments::{make_governor, WorkloadCase};
use stadvs::power::Processor;
use stadvs::sim::{
    audit_outcome, FaultPlan, MissPolicy, OverrunPolicy, SimConfig, SimOutcome, Simulator,
};
use stadvs::workload::DemandPattern;

const GOVERNORS: &[&str] = &[
    "no-dvs",
    "static-edf",
    "lpps-edf",
    "cc-edf",
    "dra",
    "dra-ote",
    "feedback-edf",
    "la-edf",
    "st-edf",
    "st-edf[r]",
    "st-edf[a]",
    "st-edf[d]",
    "st-edf-pace",
    "st-edf-cs",
];

/// The governors whose safety arguments are arrival-time-agnostic and so
/// extend to jittered (sporadic) releases — derived from the registry's
/// `supports_jitter` capability flag (everything except `la-edf`; see the
/// module docs), so this harness and the experiments can never disagree
/// about who is jitter-safe.
fn jitter_safe_governors() -> Vec<&'static str> {
    GOVERNORS
        .iter()
        .copied()
        .filter(|name| {
            stadvs::experiments::governor_supports_jitter(name).expect("lineup names are known")
        })
        .collect()
}

const HORIZON: f64 = 1.2;

fn cases() -> u32 {
    std::env::var("STADVS_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The governor-invariant part of an outcome: every released job's
/// identity, release, deadline, WCET, and post-injection actual demand
/// (as exact bits), sorted.
fn job_signature(out: &SimOutcome) -> Vec<(usize, u64, u64, u64, u64, u64)> {
    let mut sig: Vec<_> = out
        .jobs
        .iter()
        .map(|r| {
            (
                r.id.task.0,
                r.id.index,
                r.release.to_bits(),
                r.deadline.to_bits(),
                r.wcet.to_bits(),
                r.actual.to_bits(),
            )
        })
        .collect();
    sig.sort_unstable();
    sig
}

fn run_governor(case: &WorkloadCase, plan: &FaultPlan, name: &str) -> Result<SimOutcome, String> {
    let sim = Simulator::new(
        case.tasks.clone(),
        Processor::ideal_continuous(),
        SimConfig::new(HORIZON)
            .expect("valid horizon")
            .with_miss_policy(MissPolicy::Fail),
    )
    .expect("generated sets are feasible");
    let mut governor = make_governor(name).expect("governor resolves");
    sim.run_faulted(governor.as_mut(), &case.exec, plan)
        .map_err(|e| format!("{name} violated the hard guarantee: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(),
        max_shrink_iters: 64,
        ..ProptestConfig::default()
    })]

    /// Overrun factors ≤ 1.0 stay inside the WCET contract: all governors
    /// see the identical (jittered) job stream, meet every deadline under
    /// `MissPolicy::Fail`, complete every job due within the horizon, and
    /// pass the fault-aware audit.
    #[test]
    fn in_contract_plans_never_miss_and_agree_on_the_job_stream(
        n_tasks in 2usize..7,
        utilization in 0.2f64..=0.9,
        bcet in 0.1f64..=1.0,
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        overrun_p in 0.0f64..=0.5,
        factor in 0.5f64..=1.0,
        jitter_p in 0.0f64..=0.5,
        jitter_frac in 0.0f64..=0.3,
        drop_p in 0.0f64..=0.3,
    ) {
        let case = WorkloadCase::synthetic(
            n_tasks,
            utilization,
            DemandPattern::Uniform { min: bcet, max: 1.0 },
            seed,
        );
        let plan = FaultPlan::new(fault_seed)
            .with_overrun(overrun_p, factor).expect("valid channel")
            .with_release_jitter(jitter_p, jitter_frac).expect("valid channel")
            .with_switch_drops(drop_p).expect("valid channel")
            .with_policy_override(OverrunPolicy::CompleteAtMax);

        let reference = run_governor(&case, &plan, "no-dvs")
            .map_err(TestCaseError::fail)?;
        let ref_sig = job_signature(&reference);

        for name in jitter_safe_governors() {
            let outcome = run_governor(&case, &plan, name)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(outcome.miss_count(), 0, "{} missed in-contract", name);
            prop_assert_eq!(
                &job_signature(&outcome), &ref_sig,
                "{} observed a different job stream than no-dvs", name
            );
            // Every job due within the horizon completed.
            for r in &outcome.jobs {
                prop_assert!(
                    r.deadline > HORIZON || r.completion.is_some(),
                    "{}: job {:?} due at {} never completed", name, r.id, r.deadline
                );
            }
            let audit = audit_outcome(&outcome, &case.tasks, &plan);
            prop_assert!(audit.is_clean(), "{} failed the audit: {}", name, audit);
        }
    }

    /// Overrun factors > 1.0 violate the WCET contract on purpose. The
    /// run must still succeed under `MissPolicy::Fail` — which fires on
    /// *unattributed* misses only — every miss must trace back to the
    /// contamination closure, and the injected job stream must still be
    /// bit-identical to the `no-dvs` reference.
    #[test]
    fn overruns_degrade_gracefully_and_only_where_injected(
        n_tasks in 2usize..7,
        utilization in 0.2f64..=0.9,
        bcet in 0.1f64..=1.0,
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        overrun_p in 0.05f64..=0.6,
        factor in 1.0f64..=2.5,
        jitter_p in 0.0f64..=0.3,
        jitter_frac in 0.0f64..=0.2,
    ) {
        let case = WorkloadCase::synthetic(
            n_tasks,
            utilization,
            DemandPattern::Uniform { min: bcet, max: 1.0 },
            seed,
        );
        let plan = FaultPlan::new(fault_seed)
            .with_overrun(overrun_p, factor).expect("valid channel")
            .with_release_jitter(jitter_p, jitter_frac).expect("valid channel")
            .with_policy_override(OverrunPolicy::CompleteAtMax);

        let reference = run_governor(&case, &plan, "no-dvs")
            .map_err(TestCaseError::fail)?;
        let ref_sig = job_signature(&reference);
        // Even the full-speed reference may miss — but only on jobs the
        // injection contaminated.
        prop_assert_eq!(reference.unattributed_misses(), 0, "no-dvs unattributed miss");

        for name in jitter_safe_governors() {
            let outcome = run_governor(&case, &plan, name)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                outcome.unattributed_misses(), 0,
                "{}: a miss outside the contamination closure is an \
                 algorithm bug, not an injection artifact", name
            );
            prop_assert_eq!(
                &job_signature(&outcome), &ref_sig,
                "{} observed a different job stream than no-dvs", name
            );
            let audit = audit_outcome(&outcome, &case.tasks, &plan);
            prop_assert!(audit.is_clean(), "{} failed the audit: {}", name, audit);
        }
    }

    /// Jitter-free plans (overruns straddling the contract boundary, plus
    /// dropped switches) keep arrivals strictly periodic, so *every*
    /// governor — `la-edf` included — must degrade gracefully: no
    /// unattributed miss, the injected job stream bit-identical to
    /// `no-dvs`, and a clean audit.
    #[test]
    fn periodic_arrivals_cover_every_governor(
        n_tasks in 2usize..7,
        utilization in 0.2f64..=0.9,
        bcet in 0.1f64..=1.0,
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        overrun_p in 0.0f64..=0.5,
        factor in 0.5f64..=2.0,
        drop_p in 0.0f64..=0.3,
    ) {
        let case = WorkloadCase::synthetic(
            n_tasks,
            utilization,
            DemandPattern::Uniform { min: bcet, max: 1.0 },
            seed,
        );
        let plan = FaultPlan::new(fault_seed)
            .with_overrun(overrun_p, factor).expect("valid channel")
            .with_switch_drops(drop_p).expect("valid channel")
            .with_policy_override(OverrunPolicy::CompleteAtMax);

        let reference = run_governor(&case, &plan, "no-dvs")
            .map_err(TestCaseError::fail)?;
        let ref_sig = job_signature(&reference);

        for name in GOVERNORS {
            let outcome = run_governor(&case, &plan, name)
                .map_err(TestCaseError::fail)?;
            prop_assert_eq!(
                outcome.unattributed_misses(), 0,
                "{}: unattributed miss under periodic arrivals", name
            );
            if factor <= 1.0 {
                prop_assert_eq!(outcome.miss_count(), 0, "{} missed in-contract", name);
            }
            prop_assert_eq!(
                &job_signature(&outcome), &ref_sig,
                "{} observed a different job stream than no-dvs", name
            );
            let audit = audit_outcome(&outcome, &case.tasks, &plan);
            prop_assert!(audit.is_clean(), "{} failed the audit: {}", name, audit);
        }
    }
}
