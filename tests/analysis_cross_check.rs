//! Cross-validation of the off-line analyses against the simulator and
//! against each other: QPA vs brute simulation, the oracle static speed vs
//! the YDS peak, and minimum-static-speed tightness on random sets.

use proptest::prelude::*;
use stadvs::analysis::{
    edf_schedulable, materialize_jobs, minimum_static_speed, optimal_static_speed, yds_schedule,
    SchedulabilityTest, WorkKind,
};
use stadvs::power::{Processor, Speed};
use stadvs::sim::{
    ActiveJob, ConstantRatio, Governor, MissPolicy, SchedulerView, SimConfig, Simulator, Task,
    TaskSet, WorstCase,
};

struct Fixed(Speed);
impl Governor for Fixed {
    fn name(&self) -> &str {
        "fixed"
    }
    fn select_speed(&mut self, _: &SchedulerView<'_>, _: &ActiveJob) -> Speed {
        self.0
    }
}

fn random_constrained_set(seed: u64, n: usize) -> TaskSet {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tasks = Vec::new();
    for _ in 0..n {
        let period: f64 = rng.gen_range(2.0..20.0_f64).round();
        let wcet = rng.gen_range(0.1..(0.9 * period / n as f64));
        let deadline = rng.gen_range(wcet..=period);
        tasks.push(Task::with_deadline(wcet, period, deadline).expect("valid"));
    }
    TaskSet::new(tasks).expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// QPA's verdict matches a synchronous worst-case simulation at full
    /// speed (the synchronous pattern is the worst case for EDF).
    #[test]
    fn qpa_agrees_with_simulation(seed in 0u64..100_000, n in 2usize..6) {
        let tasks = random_constrained_set(seed, n);
        if tasks.density() > 1.0 {
            // The simulator (rightly) refuses sets that cannot be hard
            // real-time on any processor.
            return Ok(());
        }
        let horizon = (tasks.hyperperiod().unwrap_or(200.0))
            .min(200.0)
            .max(4.0 * tasks.max_period());
        let sim = Simulator::new(
            tasks.clone(),
            Processor::ideal_continuous(),
            SimConfig::new(horizon).expect("valid"),
        )
        .expect("density checked above");
        let outcome = sim.run(&mut Fixed(Speed::FULL), &WorstCase).expect("runs");
        match edf_schedulable(&tasks) {
            SchedulabilityTest::Schedulable => {
                prop_assert_eq!(
                    outcome.miss_count(),
                    0,
                    "QPA said schedulable but the simulation missed"
                );
            }
            SchedulabilityTest::Unschedulable { counterexample } => {
                // The violation is at a concrete time; the synchronous
                // simulation must also miss (if the horizon covers it).
                if counterexample <= horizon {
                    prop_assert!(
                        outcome.miss_count() > 0,
                        "QPA found a violation at {counterexample} but the simulation met all deadlines"
                    );
                }
            }
        }
    }

    /// The clairvoyant static-optimal speed equals the YDS peak speed (the
    /// first critical interval's intensity) and is tight against simulation.
    #[test]
    fn oracle_speed_equals_yds_peak_and_is_tight(
        seed in 0u64..100_000,
        n in 2usize..7,
        utilization in 0.2f64..0.95,
        ratio in 0.2f64..=1.0,
    ) {
        use stadvs::workload::TaskSetSpec;
        let tasks = TaskSetSpec::new(n, utilization)
            .expect("valid")
            .with_seed(seed)
            .generate()
            .expect("generates");
        let exec = ConstantRatio::new(ratio);
        let horizon = 1.5;
        let jobs = materialize_jobs(&tasks, &exec, horizon);
        let jobs = stadvs::analysis::due_within(&jobs, horizon);
        if jobs.is_empty() {
            return Ok(());
        }
        let oracle = optimal_static_speed(&jobs, WorkKind::Actual);
        let yds_peak = yds_schedule(&jobs, WorkKind::Actual).peak_speed();
        prop_assert!(
            (oracle - yds_peak).abs() < 1e-9,
            "oracle {oracle} != YDS peak {yds_peak}"
        );
        // Tightness: the oracle speed meets every due deadline... (use a
        // near-zero platform floor so quantize-up cannot silently rescue
        // the deliberately-too-slow run below).
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous_with_floor(1.0e-6).expect("valid floor"),
            SimConfig::new(horizon)
                .expect("valid")
                .with_miss_policy(MissPolicy::Record),
        )
        .expect("feasible");
        if oracle <= 1.0 && oracle > 0.0 {
            let out = sim
                .run(&mut Fixed(Speed::new(oracle.min(1.0)).expect("valid")), &exec)
                .expect("runs");
            prop_assert_eq!(out.miss_count(), 0, "oracle speed missed");
            // ...and 95 % of it does not (when meaningfully below 1).
            if oracle < 0.95 {
                let slow = sim
                    .run(
                        &mut Fixed(Speed::new(oracle * 0.95).expect("valid")),
                        &exec,
                    )
                    .expect("runs");
                prop_assert!(slow.miss_count() > 0, "oracle speed is not tight");
            }
        }
    }

    /// The design-time minimum static speed is *sufficient* on random
    /// constrained-deadline sets: worst-case simulation at that speed never
    /// misses (this exact property caught a horizon bug — the binding
    /// deadline can lie beyond the full-speed busy period).
    #[test]
    fn minimum_static_speed_is_sufficient_for_constrained_deadlines(
        seed in 0u64..1_000_000,
        n in 2usize..7,
        utilization in 0.1f64..=0.6,
        fraction in 0.55f64..=1.0,
    ) {
        use stadvs::sim::TaskSet;
        use stadvs::workload::TaskSetSpec;
        let base = TaskSetSpec::new(n, utilization)
            .expect("valid")
            .with_seed(seed)
            .generate()
            .expect("generates");
        let tasks = TaskSet::new(
            base.iter()
                .map(|(_, t)| {
                    let deadline = (fraction * t.period()).max(t.wcet());
                    Task::with_deadline(t.wcet(), t.period(), deadline).expect("valid")
                })
                .collect(),
        )
        .expect("non-empty");
        if tasks.density() > 1.0 {
            // U up to 0.6 with fractions down to 0.55 can overshoot the
            // density bound; such sets cannot be hard real-time at all.
            return Ok(());
        }
        let speed = minimum_static_speed(&tasks);
        prop_assert!(speed <= 1.0 + 1e-9, "density-bounded set infeasible?");
        let sim = Simulator::new(
            tasks,
            Processor::ideal_continuous_with_floor(1.0e-6).expect("valid floor"),
            SimConfig::new(3.0)
                .expect("valid")
                .with_miss_policy(MissPolicy::Fail),
        )
        .expect("feasible");
        let clamped = Speed::new((speed + 1e-9).min(1.0)).expect("valid");
        let out = sim.run(&mut Fixed(clamped), &WorstCase);
        prop_assert!(
            out.is_ok(),
            "minimum static speed {speed} missed: {:?}",
            out.err()
        );
    }

    /// The design-time minimum static speed upper-bounds the realized
    /// (clairvoyant) one, and equals it under worst-case demand.
    #[test]
    fn static_speed_bounds_relate(seed in 0u64..100_000, n in 2usize..6) {
        use stadvs::workload::TaskSetSpec;
        let tasks = TaskSetSpec::new(n, 0.8)
            .expect("valid")
            .with_seed(seed)
            .generate()
            .expect("generates");
        let design = minimum_static_speed(&tasks);
        let horizon = 1.0;
        let worst_jobs = stadvs::analysis::due_within(
            &materialize_jobs(&tasks, &WorstCase, horizon),
            horizon,
        );
        let light_jobs = stadvs::analysis::due_within(
            &materialize_jobs(&tasks, &ConstantRatio::new(0.4), horizon),
            horizon,
        );
        let realized_worst = optimal_static_speed(&worst_jobs, WorkKind::Actual);
        let realized_light = optimal_static_speed(&light_jobs, WorkKind::Actual);
        prop_assert!(realized_worst <= design + 1e-9,
            "realized worst {realized_worst} exceeds design bound {design}");
        prop_assert!(realized_light <= realized_worst + 1e-9);
    }
}
