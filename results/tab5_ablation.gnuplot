set terminal svg size 900,560 dynamic background rgb 'white'
set output 'tab5_ablation.svg'
set title "tab5_ablation — stEDF slack-source ablation, normalized energy (8 tasks, U = 0.7)" noenhanced
set xlabel "BCET/WCET" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'tab5_ablation.csv' using 1:2 skip 1 with linespoints title "st-edf" noenhanced, \
     'tab5_ablation.csv' using 1:3 skip 1 with linespoints title "st-edf[d]" noenhanced, \
     'tab5_ablation.csv' using 1:4 skip 1 with linespoints title "st-edf[a]" noenhanced, \
     'tab5_ablation.csv' using 1:5 skip 1 with linespoints title "st-edf[r]" noenhanced, \
     'tab5_ablation.csv' using 1:6 skip 1 with linespoints title "dra" noenhanced
