set terminal svg size 900,560 dynamic background rgb 'white'
set output 'fig7_leakage.svg'
set title "fig7_leakage — normalized energy vs static power (8 tasks, U = 0.7, BCET/WCET = 0.2)" noenhanced
set xlabel "P_static/P_max" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'fig7_leakage.csv' using 1:2 skip 1 with linespoints title "no-dvs" noenhanced, \
     'fig7_leakage.csv' using 1:3 skip 1 with linespoints title "static-edf" noenhanced, \
     'fig7_leakage.csv' using 1:4 skip 1 with linespoints title "st-edf" noenhanced, \
     'fig7_leakage.csv' using 1:5 skip 1 with linespoints title "st-edf-cs" noenhanced
