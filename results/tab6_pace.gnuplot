set terminal svg size 900,560 dynamic background rgb 'white'
set output 'tab6_pace.svg'
set title "tab6_pace — intra-job acceleration, normalized energy (8 tasks, U = 0.7)" noenhanced
set xlabel "BCET/WCET" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'tab6_pace.csv' using 1:2 skip 1 with linespoints title "static-edf" noenhanced, \
     'tab6_pace.csv' using 1:3 skip 1 with linespoints title "st-edf" noenhanced, \
     'tab6_pace.csv' using 1:4 skip 1 with linespoints title "st-edf-pace" noenhanced
