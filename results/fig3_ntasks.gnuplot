set terminal svg size 900,560 dynamic background rgb 'white'
set output 'fig3_ntasks.svg'
set title "fig3_ntasks — normalized energy vs task-set size (U = 0.7, BCET/WCET = 0.5)" noenhanced
set xlabel "tasks" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'fig3_ntasks.csv' using 1:2 skip 1 with linespoints title "no-dvs" noenhanced, \
     'fig3_ntasks.csv' using 1:3 skip 1 with linespoints title "static-edf" noenhanced, \
     'fig3_ntasks.csv' using 1:4 skip 1 with linespoints title "lpps-edf" noenhanced, \
     'fig3_ntasks.csv' using 1:5 skip 1 with linespoints title "cc-edf" noenhanced, \
     'fig3_ntasks.csv' using 1:6 skip 1 with linespoints title "dra" noenhanced, \
     'fig3_ntasks.csv' using 1:7 skip 1 with linespoints title "dra-ote" noenhanced, \
     'fig3_ntasks.csv' using 1:8 skip 1 with linespoints title "feedback-edf" noenhanced, \
     'fig3_ntasks.csv' using 1:9 skip 1 with linespoints title "la-edf" noenhanced, \
     'fig3_ntasks.csv' using 1:10 skip 1 with linespoints title "st-edf" noenhanced
