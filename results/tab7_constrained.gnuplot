set terminal svg size 900,560 dynamic background rgb 'white'
set output 'tab7_constrained.svg'
set title "tab7_constrained — normalized energy vs deadline/period fraction (6 tasks, U = 0.5)" noenhanced
set xlabel "D/T" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'tab7_constrained.csv' using 1:2 skip 1 with linespoints title "no-dvs" noenhanced, \
     'tab7_constrained.csv' using 1:3 skip 1 with linespoints title "static-edf" noenhanced, \
     'tab7_constrained.csv' using 1:4 skip 1 with linespoints title "lpps-edf" noenhanced, \
     'tab7_constrained.csv' using 1:5 skip 1 with linespoints title "dra" noenhanced, \
     'tab7_constrained.csv' using 1:6 skip 1 with linespoints title "feedback-edf" noenhanced, \
     'tab7_constrained.csv' using 1:7 skip 1 with linespoints title "st-edf" noenhanced
