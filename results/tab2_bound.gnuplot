set terminal svg size 900,560 dynamic background rgb 'white'
set output 'tab2_bound.svg'
set title "tab2_bound — energy above the YDS clairvoyant optimum, in percent (8 tasks, BCET/WCET = 0.5)" noenhanced
set xlabel "U" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'tab2_bound.csv' using 1:2 skip 1 with linespoints title "static-edf" noenhanced, \
     'tab2_bound.csv' using 1:3 skip 1 with linespoints title "cc-edf" noenhanced, \
     'tab2_bound.csv' using 1:4 skip 1 with linespoints title "dra" noenhanced, \
     'tab2_bound.csv' using 1:5 skip 1 with linespoints title "la-edf" noenhanced, \
     'tab2_bound.csv' using 1:6 skip 1 with linespoints title "st-edf" noenhanced, \
     'tab2_bound.csv' using 1:7 skip 1 with linespoints title "oracle-static" noenhanced
