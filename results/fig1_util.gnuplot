set terminal svg size 900,560 dynamic background rgb 'white'
set output 'fig1_util.svg'
set title "fig1_util — normalized energy vs worst-case utilization (8 tasks, uniform demand 0.5–1.0 WCET)" noenhanced
set xlabel "U" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'fig1_util.csv' using 1:2 skip 1 with linespoints title "no-dvs" noenhanced, \
     'fig1_util.csv' using 1:3 skip 1 with linespoints title "static-edf" noenhanced, \
     'fig1_util.csv' using 1:4 skip 1 with linespoints title "lpps-edf" noenhanced, \
     'fig1_util.csv' using 1:5 skip 1 with linespoints title "cc-edf" noenhanced, \
     'fig1_util.csv' using 1:6 skip 1 with linespoints title "dra" noenhanced, \
     'fig1_util.csv' using 1:7 skip 1 with linespoints title "dra-ote" noenhanced, \
     'fig1_util.csv' using 1:8 skip 1 with linespoints title "feedback-edf" noenhanced, \
     'fig1_util.csv' using 1:9 skip 1 with linespoints title "la-edf" noenhanced, \
     'fig1_util.csv' using 1:10 skip 1 with linespoints title "st-edf" noenhanced
