set terminal svg size 900,560 dynamic background rgb 'white'
set output 'fig2_bcet.svg'
set title "fig2_bcet — normalized energy vs BCET/WCET ratio (8 tasks, U = 0.7)" noenhanced
set xlabel "BCET/WCET" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'fig2_bcet.csv' using 1:2 skip 1 with linespoints title "no-dvs" noenhanced, \
     'fig2_bcet.csv' using 1:3 skip 1 with linespoints title "static-edf" noenhanced, \
     'fig2_bcet.csv' using 1:4 skip 1 with linespoints title "lpps-edf" noenhanced, \
     'fig2_bcet.csv' using 1:5 skip 1 with linespoints title "cc-edf" noenhanced, \
     'fig2_bcet.csv' using 1:6 skip 1 with linespoints title "dra" noenhanced, \
     'fig2_bcet.csv' using 1:7 skip 1 with linespoints title "dra-ote" noenhanced, \
     'fig2_bcet.csv' using 1:8 skip 1 with linespoints title "feedback-edf" noenhanced, \
     'fig2_bcet.csv' using 1:9 skip 1 with linespoints title "la-edf" noenhanced, \
     'fig2_bcet.csv' using 1:10 skip 1 with linespoints title "st-edf" noenhanced
