set terminal svg size 900,560 dynamic background rgb 'white'
set output 'tab4_switches.svg'
set title "tab4_switches — speed switches per job (8 tasks, BCET/WCET = 0.5)" noenhanced
set xlabel "U" noenhanced
set ylabel "normalized energy"
set key outside right
set grid
set datafile separator ','
plot 'tab4_switches.csv' using 1:2 skip 1 with linespoints title "no-dvs" noenhanced, \
     'tab4_switches.csv' using 1:3 skip 1 with linespoints title "static-edf" noenhanced, \
     'tab4_switches.csv' using 1:4 skip 1 with linespoints title "lpps-edf" noenhanced, \
     'tab4_switches.csv' using 1:5 skip 1 with linespoints title "cc-edf" noenhanced, \
     'tab4_switches.csv' using 1:6 skip 1 with linespoints title "dra" noenhanced, \
     'tab4_switches.csv' using 1:7 skip 1 with linespoints title "dra-ote" noenhanced, \
     'tab4_switches.csv' using 1:8 skip 1 with linespoints title "feedback-edf" noenhanced, \
     'tab4_switches.csv' using 1:9 skip 1 with linespoints title "la-edf" noenhanced, \
     'tab4_switches.csv' using 1:10 skip 1 with linespoints title "st-edf" noenhanced
